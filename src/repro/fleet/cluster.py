"""Fleet inventory: pods of blocks with health, occupancy, and fabric state.

A :class:`Pod` is the scheduling view of one TPU v4 machine — a cubic
grid of 4x4x4 blocks where each block is either up or down (failure
state) and either free or owned by a job.  Placement itself is delegated
to :class:`repro.core.scheduler.SliceScheduler` so the fleet uses the
exact OCS-vs-static packing rules of Section 2.5.  On OCS runs the
:class:`FleetState` carries one :class:`repro.fleet.machine.
MachineFabric` — every pod's switches plus the machine-level trunk
layer — so placements (single-pod and cross-pod alike) pay real
reconfiguration latency and trunk-port occupancy.

Free-block state is indexed incrementally — ``num_free`` is O(1) and the
free mask is maintained, not rescanned — because the fleet scheduler's
dispatch loop queries it for every queued job after every event, which
profiling showed dominated medium-preset runs.  The machine-wide view
(`total_free`, `free_by_pod`, the trunk budget) is built on those O(1)
per-pod counters, and :meth:`FleetState.check_invariants` can recompute
everything from scratch to catch index drift — the scheduler calls it
under ``__debug__`` after moves that historically risked staleness
(defrag migrations cancelled by a checkpoint covering the donor's
remaining work).
"""

from __future__ import annotations

import numpy as np

from repro.core.scheduler import (PlacementPolicy, PlacementStrategy,
                                  SliceScheduler)
from repro.core.slicing import SliceShape
from repro.errors import SchedulingError
from repro.fleet.fabric import PodFabric
from repro.fleet.machine import MachineFabric


class Pod:
    """One pod's block state: up/down, free/owned, fabric, and placement."""

    def __init__(self, pod_id: int, num_blocks: int,
                 fabric: PodFabric | None = None, *,
                 up: np.ndarray | None = None,
                 free: np.ndarray | None = None,
                 counts: np.ndarray | None = None,
                 counts_slot: int = 0) -> None:
        self.pod_id = pod_id
        self.num_blocks = num_blocks
        #: Health and free state live in numpy bitmasks so the dispatch
        #: loop's per-event queries (`first_free`, the invariant rescan)
        #: run as C-level scans instead of Python list walks.  `owner`
        #: stays a plain dict — it is the authoritative ownership record
        #: the invariant checker rebuilds the masks against.  A
        #: :class:`FleetState` passes row views of its fleet-wide
        #: matrices so the invariant check vectorizes across all pods
        #: at once; a standalone pod allocates its own rows.
        self.up = np.ones(num_blocks, dtype=bool) if up is None else up
        self.owner: dict[int, int] = {}  # block id -> job id
        self.fabric = fabric
        side = round(num_blocks ** (1 / 3))
        self._grid = (side, side, side) if side ** 3 == num_blocks else None
        # Incremental free index: _free[b] == up[b] and b not owned.
        self._free = np.ones(num_blocks, dtype=bool) if free is None \
            else free
        self._num_free = num_blocks
        # Mirror of _num_free in a shared int64 vector.  Scalar reads
        # stay on the plain int (cheaper); every mutation writes both,
        # so a FleetState-owned vector always holds all pods' counts
        # for vectorized consumers (the fast engine's placement pass).
        self._counts = np.full(1, num_blocks, dtype=np.int64) \
            if counts is None else counts
        self._slot = counts_slot
        # Down-and-unowned count, maintained incrementally so the
        # per-dispatch conservation probe is O(1) per pod.
        self._down_unowned = 0

    # -- state queries -----------------------------------------------------------

    def is_free(self, block: int) -> bool:
        """True when the block is healthy and unowned."""
        return bool(self._free[block])

    def free_mask(self) -> list[bool]:
        """Per-block availability, the SliceScheduler health map (a copy)."""
        return self._free.tolist()

    def first_free(self, count: int) -> list[int] | None:
        """The `count` lowest-id free blocks, or None if under `count`."""
        if self._num_free < count:
            return None
        picked = self._free.nonzero()[0][:count]
        if len(picked) < count:
            raise SchedulingError(   # pragma: no cover - index corruption
                f"pod {self.pod_id} free index out of sync")
        return picked.tolist()

    @property
    def num_free(self) -> int:
        """Healthy, unowned blocks (O(1), maintained incrementally)."""
        return self._num_free

    @property
    def num_busy(self) -> int:
        """Blocks currently owned by jobs."""
        return len(self.owner)

    @property
    def num_down(self) -> int:
        """Blocks currently failed."""
        return int(np.count_nonzero(~self.up))

    def jobs_on(self) -> list[int]:
        """Sorted ids of jobs holding any block of this pod.

        Sorted so callers may iterate directly without inheriting set
        order; scheduler consumers re-sort by their own total-order
        keys, so the result bytes are unchanged.
        """
        return sorted(set(self.owner.values()))

    # -- placement ---------------------------------------------------------------

    def find_placement(self, shape: SliceShape, policy: PlacementPolicy,
                       strategy: PlacementStrategy =
                       PlacementStrategy.FIRST_FIT) -> list[int] | None:
        """Blocks for one slice under `policy`/`strategy`, or None."""
        scheduler = SliceScheduler(self._free.tolist(), grid=self._grid)
        return scheduler.place_one(shape, policy, strategy)

    def assign(self, blocks: list[int], job_id: int) -> None:
        """Give `blocks` to `job_id`."""
        for block in blocks:
            if not self._free[block]:
                raise SchedulingError(
                    f"pod {self.pod_id} block {block} is not free")
        for block in blocks:
            self.owner[block] = job_id
            self._free[block] = False
        self._num_free -= len(blocks)
        self._counts[self._slot] = self._num_free

    def release(self, job_id: int,
                blocks: list[int] | None = None) -> list[int]:
        """Free every block `job_id` holds; returns the freed blocks.

        `blocks` is an optional hint naming the blocks the caller
        assigned to the job (the scheduler's ActiveJob keeps them);
        with it the release checks just those owner entries instead of
        scanning every owned block in the pod.  Ownership is still
        verified per block, so a stale hint frees nothing it shouldn't.
        """
        if blocks is not None:
            owner = self.owner
            freed = [b for b in blocks if owner.get(b) == job_id]
        else:
            freed = [b for b, owner in self.owner.items()
                     if owner == job_id]
        for block in freed:
            del self.owner[block]
            if self.up[block]:
                self._free[block] = True
                self._num_free += 1
            else:
                self._down_unowned += 1
        self._counts[self._slot] = self._num_free
        return sorted(freed)

    # -- failures -----------------------------------------------------------------

    def block_down(self, block: int) -> int | None:
        """Fail a block; returns the interrupted job id, if any."""
        was_up = bool(self.up[block])
        self.up[block] = False
        if self._free[block]:
            self._free[block] = False
            self._num_free -= 1
            self._counts[self._slot] = self._num_free
            self._down_unowned += 1
        elif was_up and block not in self.owner:
            self._down_unowned += 1  # pragma: no cover - defensive
        return self.owner.get(block)

    def block_up(self, block: int) -> None:
        """Repair a block."""
        self.up[block] = True
        if block not in self.owner and not self._free[block]:
            self._free[block] = True
            self._num_free += 1
            self._counts[self._slot] = self._num_free
            self._down_unowned -= 1


class FleetState:
    """All pods of the fleet, the machine fabric, and the machine index."""

    def __init__(self, num_pods: int, blocks_per_pod: int,
                 with_fabric: bool = False, trunk_ports: int = 0) -> None:
        self.machine = MachineFabric(num_pods, blocks_per_pod,
                                     trunk_ports) if with_fabric else None
        # Fleet-wide bitmask matrices; each pod works on its row view,
        # so per-pod mutations land here and the invariant rescan runs
        # one vectorized pass over every pod at once.
        self._up_matrix = np.ones((num_pods, blocks_per_pod), dtype=bool)
        self._free_matrix = np.ones((num_pods, blocks_per_pod),
                                    dtype=bool)
        self._free_counts = np.full(num_pods, blocks_per_pod,
                                    dtype=np.int64)
        self.pods = [
            Pod(pod_id, blocks_per_pod,
                fabric=self.machine.pods[pod_id] if self.machine else None,
                up=self._up_matrix[pod_id],
                free=self._free_matrix[pod_id],
                counts=self._free_counts,
                counts_slot=pod_id)
            for pod_id in range(num_pods)]

    @property
    def free_counts(self) -> np.ndarray:
        """Per-pod free-block counts as one shared int64 vector.

        Kept in lockstep with every pod's O(1) counter; vectorized
        consumers (the fast engine's placement pass) index it directly
        instead of looping ``pod.num_free`` across pods.
        """
        return self._free_counts

    @property
    def total_blocks(self) -> int:
        """Blocks across all pods."""
        return sum(pod.num_blocks for pod in self.pods)

    @property
    def total_free(self) -> int:
        """Healthy, unowned blocks machine-wide.

        Summed over the shared free-count vector (every per-pod counter
        mirrors into it on mutation), so the cost stays flat as the pod
        count grows — this guard runs per queued job per dispatch pass.
        """
        return int(self._free_counts.sum())

    @property
    def busy_blocks(self) -> int:
        """Blocks owned by jobs right now."""
        return sum(pod.num_busy for pod in self.pods)

    @property
    def down_blocks(self) -> int:
        """Blocks currently failed."""
        return sum(pod.num_down for pod in self.pods)

    def free_by_pod(self) -> list[tuple[int, int]]:
        """(pod id, free blocks) per pod — the machine placement index.

        Read off the shared free-count vector (pod ids are its indices)
        so the multi-region planner's per-call cost stays flat in pod
        count.
        """
        return list(enumerate(self._free_counts.tolist()))

    def pods_by_space(self) -> list[Pod]:
        """Pods ordered most-free first (ties by id, deterministic)."""
        return sorted(self.pods, key=lambda p: (-p.num_free, p.pod_id))

    def check_conservation(self) -> None:
        """O(pods) probe: free + owned + down-unowned covers every block.

        The per-dispatch guard: every incremental counter update keeps
        the three classes a partition of the pod's blocks, so any
        single-sided index update — including a tampered ``owner``
        map — breaks the sum and fails here on the very next dispatch.
        Positional drift that happens to conserve counts (a free mask
        pointing at the wrong block) is caught by the cadenced full
        rescan in :meth:`check_invariants`.
        """
        for pod in self.pods:
            if pod._num_free + len(pod.owner) + pod._down_unowned != \
                    pod.num_blocks:
                raise SchedulingError(
                    f"pod {pod.pod_id} blocks not conserved: "
                    f"{pod.num_free} free + {pod.num_busy} busy + "
                    f"{pod._down_unowned} down != {pod.num_blocks}")

    def check_invariants(self) -> None:
        """Recompute every incremental index and assert it matches.

        The drift guard behind defrag migrations and cross-pod
        placement: per-pod free masks and counters are rebuilt from the
        authoritative up/owner state, and the machine fabric's trunk
        ledger is re-summed, so any code path that updates one side of
        an index without the other fails loudly here instead of
        corrupting placement decisions later.  Cheap enough to run
        under ``__debug__`` after every scheduler dispatch.
        """
        num_pods, blocks_per_pod = self._up_matrix.shape
        rescan = self._up_matrix.copy()
        owned_pairs = [(pod.pod_id, block)
                       for pod in self.pods for block in pod.owner]
        if owned_pairs:
            owned = np.asarray(owned_pairs, dtype=np.int64)
            pod_ids, block_ids = owned[:, 0], owned[:, 1]
            if block_ids.min() < 0 or \
                    (block_ids >= blocks_per_pod).any():
                bad = int(pod_ids[(block_ids < 0) |
                                  (block_ids >= blocks_per_pod)][0])
                raise SchedulingError(
                    f"pod {bad} owner map names an out-of-range block")
            rescan[pod_ids, block_ids] = False
            down_owned = np.bincount(
                pod_ids[~self._up_matrix[pod_ids, block_ids]],
                minlength=num_pods)
        else:
            down_owned = np.zeros(num_pods, dtype=np.int64)
        if not np.array_equal(self._free_matrix, rescan):
            drifted = (self._free_matrix != rescan).any(axis=1)
            raise SchedulingError(
                f"pod {int(np.flatnonzero(drifted)[0])} free mask "
                f"drifted from up/owner state")
        free_counts = np.count_nonzero(rescan, axis=1)
        for pod, free_count in zip(self.pods, free_counts.tolist()):
            if pod.num_free != free_count:
                raise SchedulingError(
                    f"pod {pod.pod_id} free counter {pod.num_free} != "
                    f"rescan {free_count}")
        if not np.array_equal(self._free_counts, free_counts):
            raise SchedulingError(
                "shared free-count vector drifted from per-pod counters")
        down_unowned = np.count_nonzero(~self._up_matrix, axis=1) - \
            down_owned
        for pod, extra in zip(self.pods, down_unowned.tolist()):
            if pod._down_unowned != extra:
                raise SchedulingError(
                    f"pod {pod.pod_id} down-unowned counter "
                    f"{pod._down_unowned} != rescan {extra}")
            if pod.num_free + pod.num_busy + extra != pod.num_blocks:
                raise SchedulingError(
                    f"pod {pod.pod_id} blocks not conserved")
        if self.total_free + self.busy_blocks > self.total_blocks:
            raise SchedulingError("machine-wide block conservation broken")
        if self.machine is not None:
            self.machine.check_trunk_accounting()

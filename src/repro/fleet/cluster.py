"""Fleet inventory: pods of blocks with health and occupancy state.

A :class:`Pod` is the scheduling view of one TPU v4 machine — a cubic
grid of 4x4x4 blocks where each block is either up or down (failure
state) and either free or owned by a job.  Placement itself is delegated
to :class:`repro.core.scheduler.SliceScheduler` so the fleet uses the
exact OCS-vs-static packing rules of Section 2.5.
"""

from __future__ import annotations

from repro.core.scheduler import PlacementPolicy, SliceScheduler
from repro.core.slicing import SliceShape
from repro.errors import SchedulingError


class Pod:
    """One pod's block state: up/down, free/owned, and placement."""

    def __init__(self, pod_id: int, num_blocks: int) -> None:
        self.pod_id = pod_id
        self.num_blocks = num_blocks
        self.up = [True] * num_blocks
        self.owner: dict[int, int] = {}  # block id -> job id

    # -- state queries -----------------------------------------------------------

    def is_free(self, block: int) -> bool:
        """True when the block is healthy and unowned."""
        return self.up[block] and block not in self.owner

    def free_mask(self) -> list[bool]:
        """Per-block availability, the SliceScheduler health map."""
        return [self.is_free(b) for b in range(self.num_blocks)]

    @property
    def num_free(self) -> int:
        """Healthy, unowned blocks."""
        return sum(1 for b in range(self.num_blocks) if self.is_free(b))

    @property
    def num_busy(self) -> int:
        """Blocks currently owned by jobs."""
        return len(self.owner)

    @property
    def num_down(self) -> int:
        """Blocks currently failed."""
        return self.up.count(False)

    def jobs_on(self) -> set[int]:
        """Ids of jobs holding any block of this pod."""
        return set(self.owner.values())

    # -- placement ---------------------------------------------------------------

    def find_placement(self, shape: SliceShape,
                       policy: PlacementPolicy) -> list[int] | None:
        """Blocks for one slice under `policy`, or None if it cannot fit."""
        scheduler = SliceScheduler(self.free_mask())
        return scheduler.place_one(shape, policy)

    def assign(self, blocks: list[int], job_id: int) -> None:
        """Give `blocks` to `job_id`."""
        for block in blocks:
            if not self.is_free(block):
                raise SchedulingError(
                    f"pod {self.pod_id} block {block} is not free")
        for block in blocks:
            self.owner[block] = job_id

    def release(self, job_id: int) -> list[int]:
        """Free every block `job_id` holds; returns the freed blocks."""
        freed = [b for b, owner in self.owner.items() if owner == job_id]
        for block in freed:
            del self.owner[block]
        return sorted(freed)

    # -- failures -----------------------------------------------------------------

    def block_down(self, block: int) -> int | None:
        """Fail a block; returns the interrupted job id, if any."""
        self.up[block] = False
        return self.owner.get(block)

    def block_up(self, block: int) -> None:
        """Repair a block."""
        self.up[block] = True


class FleetState:
    """All pods of the fleet plus aggregate occupancy accounting."""

    def __init__(self, num_pods: int, blocks_per_pod: int) -> None:
        self.pods = [Pod(pod_id, blocks_per_pod)
                     for pod_id in range(num_pods)]

    @property
    def total_blocks(self) -> int:
        """Blocks across all pods."""
        return sum(pod.num_blocks for pod in self.pods)

    @property
    def busy_blocks(self) -> int:
        """Blocks owned by jobs right now."""
        return sum(pod.num_busy for pod in self.pods)

    @property
    def down_blocks(self) -> int:
        """Blocks currently failed."""
        return sum(pod.num_down for pod in self.pods)

    def pods_by_space(self) -> list[Pod]:
        """Pods ordered most-free first (ties by id, deterministic)."""
        return sorted(self.pods, key=lambda p: (-p.num_free, p.pod_id))

"""Deterministic observability for fleet runs.

Span tracing, the scheduler decision log, time-series sampling,
Perfetto/JSONL export, and dispatch-loop profiling — see the module
docstrings under this package and the README's Observability section.
"""

from repro.fleet.obs.export import (OBS_SCHEMA, OBS_VERSION,
                                    dumps_chrome_trace, dumps_obs,
                                    load_obs, loads_obs, render_report,
                                    save_obs, to_chrome_trace,
                                    validate_chrome_trace)
from repro.fleet.obs.metrics import MetricsSampler
from repro.fleet.obs.profiler import DispatchProfiler
from repro.fleet.obs.tracer import (Decision, Instant, NULL_RECORDER,
                                    NullRecorder, ObsRecorder,
                                    PLACED_CAUSES, REJECTED_CAUSES,
                                    SPAN_PHASES, SampleColumns, Span)

__all__ = [
    "OBS_SCHEMA",
    "OBS_VERSION",
    "Decision",
    "DispatchProfiler",
    "Instant",
    "MetricsSampler",
    "NULL_RECORDER",
    "NullRecorder",
    "ObsRecorder",
    "PLACED_CAUSES",
    "REJECTED_CAUSES",
    "SPAN_PHASES",
    "SampleColumns",
    "Span",
    "dumps_chrome_trace",
    "dumps_obs",
    "load_obs",
    "loads_obs",
    "render_report",
    "save_obs",
    "to_chrome_trace",
    "validate_chrome_trace",
]

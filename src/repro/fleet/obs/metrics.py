"""Time-series sampling of fleet state on a sim-time cadence.

The sampler rides the same deterministic event kernel as the run it
observes: at construction it schedules one read-only callback every
``obs_sample_every_seconds`` of simulated time, from t=0 through the
horizon, and each firing appends one row to the recorder's
:class:`~repro.fleet.obs.tracer.SampleColumns` — queue depth, running
jobs, trunk-port occupancy, and free blocks per pod.

Sampling must not perturb the run: callbacks only *read* scheduler and
fleet state, never mutate it, so enabling observability changes no
placement, no telemetry bucket, and no summary value.  (It does fire
extra events, so :attr:`FleetReport.events_fired` grows — the one
visible side effect, and why that counter is not part of the summary.)
Because sampler events are scheduled after the run's job arrivals and
outages, a sample at time t observes the state *after* every same-time
arrival/outage has applied — the end-of-tick view, stable across runs
by the kernel's insertion-order tie-break.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # import cycle guard (scheduler imports obs)
    from repro.fleet.cluster import FleetState
    from repro.fleet.obs.tracer import ObsRecorder
    from repro.fleet.scheduler import FleetScheduler
    from repro.sim.events import Simulator


class MetricsSampler:
    """Schedules periodic state snapshots into a recorder."""

    #: Hard ceiling on eagerly scheduled sample ticks.  Eager
    #: scheduling is what fixes the event population (and the kernel's
    #: same-time tie-breaks) before the first event fires, so the
    #: sampler keeps it — but a misconfigured cadence (milliseconds
    #: against a week-long horizon) would materialize the whole tick
    #: population in memory up front.  Rather than silently chunking
    #: (which would change the event population and with it the
    #: tie-break contract), an over-cap cadence is rejected outright.
    MAX_TICKS = 100_000

    def __init__(self, recorder: "ObsRecorder",
                 scheduler: "FleetScheduler", state: "FleetState",
                 every_seconds: float) -> None:
        if every_seconds <= 0:
            raise ConfigurationError(
                f"sample cadence must be > 0 seconds, got {every_seconds}")
        self.recorder = recorder
        self.scheduler = scheduler
        self.state = state
        self.every_seconds = every_seconds

    def install(self, sim: "Simulator", horizon: float) -> int:
        """Schedule every sample tick up to the horizon; returns count.

        Ticks are scheduled eagerly (the count is known up front) rather
        than self-rescheduling, so the event population — and with it
        the run's event-order tie-breaks — is fixed before the first
        event fires.  Cadences needing more than :attr:`MAX_TICKS`
        ticks raise :class:`ConfigurationError` instead of scheduling
        an unbounded event flood.
        """
        if horizon / self.every_seconds >= self.MAX_TICKS:
            raise ConfigurationError(
                f"sample cadence {self.every_seconds}s over a "
                f"{horizon}s horizon needs more than {self.MAX_TICKS} "
                f"ticks; raise obs_sample_every_seconds")
        ticks = 0
        time = 0.0
        while time <= horizon:
            sim.schedule_at(time, lambda t=time: self._sample(t))
            ticks += 1
            time = ticks * self.every_seconds
        return ticks

    def _sample(self, time: float) -> None:
        """Append one read-only snapshot of fleet state."""
        machine = self.state.machine
        self.recorder.sample(
            time=time,
            queue_depth=len(self.scheduler.queue),
            running_jobs=len(self.scheduler.running),
            trunk_ports_in_use=machine.trunk_in_use()
            if machine is not None else 0,
            free_by_pod=[pod.num_free for pod in self.state.pods])

"""Wall-clock profiling hooks around the dispatch loop.

Everything else in :mod:`repro.fleet.obs` records *simulation* time;
this module is the one deliberate exception — it measures where the
simulator itself spends host CPU, because the ROADMAP's vectorized
event core needs a measured baseline ("profile `large`/`edge` first")
before any speedup claim can be gated.

The profiler instruments by *instance* method wrapping: ``install``
replaces the scheduler's placement/defrag/preemption entry points and
the kernel's ``step`` with timing shims on those objects only, so an
uninstrumented run (the default, and every benchmark) executes the
original bound methods with zero indirection.  Wall-clock readings
feed only these counters — never the simulation — so an instrumented
run still produces byte-identical results.

Phases nest: the placement/defrag/cross-pod/preemption rungs run
inside ``dispatch``, which runs inside event application.  The report
prints leaf phases as shares of total run wall, not as a partition.

This module is also the anchor of detlint's **D002 wall-clock
allowlist** (``repro.analysis.determinism``).  The static analyzer
bans host-clock reads everywhere in the package, with exactly two
exemptions: this file wholesale (measuring host time *is* its job),
and — in ``fleet/simulator.py`` and ``fleet/engine_fast.py`` — only
functions that stamp a profiler's ``run_seconds``, which pins the
engines' best-of-N timing reads and nothing else.  Adding a
``time.*`` call anywhere outside those sites fails the CI lint gate;
if a new sanctioned reader is ever needed, extend the allowlist in
``repro/analysis/determinism.py`` alongside a justification here.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # import cycle guard (scheduler imports obs)
    from repro.fleet.scheduler import FleetScheduler
    from repro.sim.events import Simulator

#: Instrumented phases: (phase name, target object, method name).
#: ``_preempt_for`` covers the cross-pod preemption path too (it
#: delegates); wrapping ``_preempt_cross_pod`` as well would double
#: count the nested time.
SCHEDULER_PHASES = (
    ("dispatch_total", "dispatch"),
    ("placement_scoring", "_find_anywhere"),
    ("defrag_planning", "_defrag_for"),
    ("cross_pod_planning", "_find_cross_pod"),
    ("preemption_search", "_preempt_for"),
)
SIM_PHASES = (("event_apply", "step"),)


class DispatchProfiler:
    """Accumulates wall-clock seconds and call counts per phase."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        #: Wall seconds of the whole run, stamped by the simulator.
        self.run_seconds: float = 0.0

    def _wrap(self, phase: str,
              method: Callable[..., Any]) -> Callable[..., Any]:
        self.seconds.setdefault(phase, 0.0)
        self.calls.setdefault(phase, 0)

        def timed(*args: Any, **kwargs: Any) -> Any:
            began = time.perf_counter()
            try:
                return method(*args, **kwargs)
            finally:
                self.seconds[phase] += time.perf_counter() - began
                self.calls[phase] += 1
        return timed

    def install(self, scheduler: "FleetScheduler",
                sim: "Simulator") -> None:
        """Shadow the hot methods on these instances with timing shims."""
        for phase, name in SCHEDULER_PHASES:
            setattr(scheduler, name,
                    self._wrap(phase, getattr(scheduler, name)))
        for phase, name in SIM_PHASES:
            # Instance-attribute shadowing: Simulator.run calls
            # self.step(), which resolves to this shim.
            setattr(sim, name, self._wrap(phase, getattr(sim, name)))

    def report(self) -> dict[str, Any]:
        """The counters as a plain dict (for JSON or assertions)."""
        return {
            "run_seconds": self.run_seconds,
            "phases": {phase: {"seconds": self.seconds[phase],
                               "calls": self.calls[phase]}
                       for phase in sorted(self.seconds)},
        }

    def render(self) -> str:
        """Human-readable profile table."""
        lines = [f"dispatch-loop profile: run wall "
                 f"{self.run_seconds:.3f}s (phases nest; shares are "
                 f"of run wall, not a partition)",
                 f"  {'phase':<20} {'calls':>10} {'seconds':>10} "
                 f"{'share':>7} {'us/call':>9}"]
        order = [phase for phase, _ in SIM_PHASES] + \
                [phase for phase, _ in SCHEDULER_PHASES]
        for phase in order:
            if phase not in self.seconds:
                continue
            seconds = self.seconds[phase]
            calls = self.calls[phase]
            share = seconds / self.run_seconds \
                if self.run_seconds > 0 else 0.0
            per_call = seconds / calls * 1e6 if calls else 0.0
            lines.append(f"  {phase:<20} {calls:>10} {seconds:>10.3f} "
                         f"{share:>6.1%} {per_call:>9.1f}")
        return "\n".join(lines)

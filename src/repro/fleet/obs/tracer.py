"""Deterministic span tracing for fleet runs.

The fleet simulator's results are end-of-run aggregates; operating a
machine needs the *timeline* underneath them — when each job queued,
rewired, restored, ran, and why the scheduler placed or rejected it.
This module records that timeline as four deterministic record streams:

* **spans** — per-job lifecycle intervals (``queued``, ``reconfig``,
  ``restore``, ``running``), emitted at segment-accounting time so span
  boundaries are *exactly* the boundaries the utilization identity
  banks.  A job's spans never overlap, and its ``running`` spans carry
  the identity's per-segment split (useful, replay, checkpoint writes,
  trunk stall) in their args.
* **instants** — point events: outages and repairs, deployment drains,
  trunk rewirings, preemptions, interruptions, migrations, completions.
* **decisions** — the scheduler decision log: one record per placement
  attempt, with outcome (placed via which rung, or rejected) and cause.
* **samples** — the time-series columns filled by
  :class:`repro.fleet.obs.metrics.MetricsSampler`.

Every timestamp is *simulation* time — wall-clock never leaks into a
record — so double runs of the same scenario produce byte-identical
exports.  When observability is disabled the scheduler holds the shared
:data:`NULL_RECORDER`, whose ``enabled`` flag gates the one hot-path
call site (the decision log inside the dispatch loop) and whose event
methods are no-ops, keeping the disabled overhead to attribute checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Span phase names, in lifecycle order.  ``queued`` covers submission
#: (or requeue) to placement; the other three partition every placed
#: segment: the fabric rewires, the checkpoint restores, the job runs.
SPAN_PHASES = ("queued", "reconfig", "restore", "running")

#: Decision outcomes: the rung that placed the job, or a rejection.
PLACED_CAUSES = ("pod_local", "defrag", "cross_pod", "preemption")
REJECTED_CAUSES = ("insufficient_blocks", "insufficient_trunk_ports",
                   "failure_cache_hit", "preemption_declined")


@dataclass(frozen=True)
class Span:
    """One per-job lifecycle interval, in simulation seconds."""

    name: str
    job_id: int
    start: float
    end: float
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Length of the span in simulated seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """One point event, in simulation seconds."""

    name: str
    time: float
    args: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Decision:
    """One scheduler placement attempt and its audited outcome."""

    time: float
    job_id: int
    kind: str     # workload kind, for the per-job-class export track
    blocks: int
    priority: int
    outcome: str  # 'placed' | 'rejected'
    cause: str    # a PLACED_CAUSES or REJECTED_CAUSES member

    @property
    def placed(self) -> bool:
        """True when the attempt produced a placement."""
        return self.outcome == "placed"


@dataclass
class SampleColumns:
    """Time-series buffers, one parallel column per metric.

    Column layout (not a list of per-sample objects) so the coming
    vectorized event core can hand these straight to numpy: every
    column is a plain list appended in time order, and ``free_blocks``
    is one column per pod.
    """

    times: list[float] = field(default_factory=list)
    queue_depth: list[int] = field(default_factory=list)
    running_jobs: list[int] = field(default_factory=list)
    trunk_ports_in_use: list[int] = field(default_factory=list)
    free_blocks: list[list[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.free_blocks and not self.times:
            # Columns are only ever built together; a free_blocks
            # column without timestamps is a construction bug.
            raise ValueError("free_blocks columns require times")

    def __len__(self) -> int:
        return len(self.times)

    def append(self, time: float, queue_depth: int, running_jobs: int,
               trunk_ports_in_use: int,
               free_by_pod: list[int]) -> None:
        """Append one sample across every column."""
        if not self.free_blocks:
            self.free_blocks = [[] for _ in free_by_pod]
        self.times.append(time)
        self.queue_depth.append(queue_depth)
        self.running_jobs.append(running_jobs)
        self.trunk_ports_in_use.append(trunk_ports_in_use)
        for column, value in zip(self.free_blocks, free_by_pod):
            column.append(value)


class NullRecorder:
    """The disabled recorder: every hook is a no-op.

    Shared as :data:`NULL_RECORDER` so the scheduler and simulator can
    call observability hooks unconditionally on cold paths and gate
    only the dispatch-loop decision log on :attr:`enabled`.
    """

    enabled = False

    def span(self, name: str, job_id: int, start: float, end: float,
             **args: Any) -> None:
        pass

    def instant(self, name: str, time: float, **args: Any) -> None:
        pass

    def decision(self, time: float, job_id: int, kind: str, blocks: int,
                 priority: int, outcome: str, cause: str) -> None:
        pass

    def sample(self, time: float, queue_depth: int, running_jobs: int,
               trunk_ports_in_use: int,
               free_by_pod: list[int]) -> None:
        pass


#: The process-wide disabled recorder (stateless, safe to share).
NULL_RECORDER = NullRecorder()


@dataclass
class ObsRecorder:
    """The live recorder: accumulates one run's observability log.

    One recorder belongs to one :meth:`FleetSimulator.run` call — the
    simulator stamps the run's identity (policy, strategy, seed, fleet
    shape) into :attr:`meta` at run start, and the exporters in
    :mod:`repro.fleet.obs.export` serialize the finished log.  Records
    append in event-execution order, which the deterministic event
    kernel fixes, so the log itself is deterministic.
    """

    enabled = True

    meta: dict[str, Any] = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    instants: list[Instant] = field(default_factory=list)
    decisions: list[Decision] = field(default_factory=list)
    samples: SampleColumns = field(default_factory=SampleColumns)

    def span(self, name: str, job_id: int, start: float, end: float,
             **args: Any) -> None:
        """Record one closed per-job interval."""
        self.spans.append(Span(name=name, job_id=job_id, start=start,
                               end=end, args=args))

    def instant(self, name: str, time: float, **args: Any) -> None:
        """Record one point event."""
        self.instants.append(Instant(name=name, time=time, args=args))

    def decision(self, time: float, job_id: int, kind: str, blocks: int,
                 priority: int, outcome: str, cause: str) -> None:
        """Record one placement attempt's outcome and cause."""
        self.decisions.append(Decision(
            time=time, job_id=job_id, kind=kind, blocks=blocks,
            priority=priority, outcome=outcome, cause=cause))

    def sample(self, time: float, queue_depth: int, running_jobs: int,
               trunk_ports_in_use: int,
               free_by_pod: list[int]) -> None:
        """Record one time-series sample across every column."""
        self.samples.append(time, queue_depth, running_jobs,
                            trunk_ports_in_use, free_by_pod)

    @property
    def num_records(self) -> int:
        """Total records held (spans + instants + decisions + samples)."""
        return len(self.spans) + len(self.instants) + \
            len(self.decisions) + len(self.samples)

    def spans_of(self, job_id: int) -> list[Span]:
        """One job's spans, in recording (time) order."""
        return [span for span in self.spans if span.job_id == job_id]

    def rejection_counts(self) -> dict[str, int]:
        """Rejected-attempt counts by cause, descending, ties by name."""
        counts: dict[str, int] = {}
        for decision in self.decisions:
            if not decision.placed:
                counts[decision.cause] = counts.get(decision.cause, 0) + 1
        return dict(sorted(counts.items(),
                           key=lambda item: (-item[1], item[0])))

"""Observability-log exporters: Chrome trace-event JSON and JSONL.

Two on-disk shapes for one :class:`~repro.fleet.obs.tracer.ObsRecorder`
log, chosen by file extension at the CLI:

* **Chrome trace-event JSON** (``.json``) — the ``traceEvents`` object
  format Perfetto and ``chrome://tracing`` load directly.  Tracks: the
  ``fleet`` process holds one thread per pod (outage/drain/trunk
  instants) plus counter series (queue depth, running jobs, trunk
  ports, free blocks per pod); the ``jobs`` process holds one thread
  per *job class* (kind + block count) carrying every job's lifecycle
  spans, job instants, and decision-log instants.  Each event's
  ``args`` embeds the full source record, so the export is lossless
  for spans/instants/decisions and ``fleet report`` can read either
  format.
* **versioned JSONL** (``.jsonl``) — one validated record per line
  under the same header-first discipline as workload traces
  (:mod:`repro.fleet.trace`): schema tag, exact-version match, typed
  per-line validation, loud :class:`~repro.errors.TraceError` on any
  violation.

Determinism contract: both serializers emit records in recording order
with sorted keys and no wall-clock anywhere, so double runs of the same
scenario export byte-identical files — CI diffs them.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.errors import TraceError
from repro.fleet.obs.tracer import (Decision, Instant, ObsRecorder,
                                    PLACED_CAUSES, REJECTED_CAUSES, Span)
from repro.units import HOUR

#: Bump on any schema change; loaders accept exactly this version.
OBS_VERSION = 1

#: The JSONL header's schema tag — guards against feeding a workload
#: trace (schema repro.fleet.trace) or a bench artifact to the loader.
OBS_SCHEMA = "repro.fleet.obs"

#: Chrome trace-event process ids: fleet-level tracks vs per-job-class
#: tracks.  Constants, not config — the layout IS the format.
PID_FLEET = 1
PID_JOBS = 2

_MICROS = 1e6  # trace-event timestamps are microseconds

_OUTCOMES = ("placed", "rejected")
_CAUSES = set(PLACED_CAUSES) | set(REJECTED_CAUSES)


def _job_class(kind: str, blocks: int) -> str:
    """The display class one job belongs to (one track per class)."""
    return f"{kind}-{blocks}b"


def _job_classes(recorder: ObsRecorder) -> dict[str, int]:
    """Deterministic class -> thread id map over every job record."""
    classes: set[tuple[str, int]] = set()
    for span in recorder.spans:
        classes.add((span.args.get("kind", "job"),
                     span.args.get("blocks", 0)))
    for instant in recorder.instants:
        if "job_id" in instant.args:
            classes.add((instant.args.get("kind", "job"),
                         instant.args.get("blocks", 0)))
    for decision in recorder.decisions:
        classes.add((decision.kind, decision.blocks))
    ordered = sorted(classes, key=lambda c: (c[0], c[1]))
    return {_job_class(kind, blocks): tid
            for tid, (kind, blocks) in enumerate(ordered)}


# -- Chrome trace-event export ---------------------------------------------------


def to_chrome_trace(recorder: ObsRecorder) -> dict[str, Any]:
    """The log as a Chrome trace-event object (Perfetto-loadable)."""
    meta = recorder.meta
    num_pods = int(meta.get("num_pods", 0))
    classes = _job_classes(recorder)
    events: list[dict[str, Any]] = []

    def metadata(pid: int, tid: int, name: str, label: str) -> None:
        events.append({"ph": "M", "pid": pid, "tid": tid, "name": name,
                       "args": {"name": label}})

    metadata(PID_FLEET, 0, "process_name", "fleet")
    for pod_id in range(num_pods):
        metadata(PID_FLEET, pod_id, "thread_name", f"pod {pod_id}")
    metadata(PID_JOBS, 0, "process_name", "jobs")
    for label, tid in classes.items():
        metadata(PID_JOBS, tid, "thread_name", label)

    def class_tid(args: dict[str, Any]) -> int:
        return classes.get(_job_class(args.get("kind", "job"),
                                      args.get("blocks", 0)), 0)

    for span in recorder.spans:
        events.append({
            "ph": "X", "pid": PID_JOBS, "tid": class_tid(span.args),
            "ts": span.start * _MICROS, "dur": span.duration * _MICROS,
            "name": span.name,
            "args": {"job_id": span.job_id, **span.args}})
    for instant in recorder.instants:
        if "job_id" in instant.args:
            pid, tid = PID_JOBS, class_tid(instant.args)
        else:
            pid, tid = PID_FLEET, int(instant.args.get("pod_id", 0))
        events.append({
            "ph": "i", "s": "t", "pid": pid, "tid": tid,
            "ts": instant.time * _MICROS, "name": instant.name,
            "args": dict(instant.args)})
    for decision in recorder.decisions:
        events.append({
            "ph": "i", "s": "t", "pid": PID_JOBS,
            "tid": classes.get(_job_class(decision.kind, decision.blocks),
                               0),
            "ts": decision.time * _MICROS,
            "name": f"decision:{decision.cause}",
            "args": {"job_id": decision.job_id, "kind": decision.kind,
                     "blocks": decision.blocks,
                     "priority": decision.priority,
                     "outcome": decision.outcome,
                     "cause": decision.cause}})
    samples = recorder.samples
    for index, time in enumerate(samples.times):
        ts = time * _MICROS
        events.append({"ph": "C", "pid": PID_FLEET, "tid": 0, "ts": ts,
                       "name": "queue_depth",
                       "args": {"value": samples.queue_depth[index]}})
        events.append({"ph": "C", "pid": PID_FLEET, "tid": 0, "ts": ts,
                       "name": "running_jobs",
                       "args": {"value": samples.running_jobs[index]}})
        events.append({"ph": "C", "pid": PID_FLEET, "tid": 0, "ts": ts,
                       "name": "trunk_ports_in_use",
                       "args": {"value":
                                samples.trunk_ports_in_use[index]}})
        for pod_id, column in enumerate(samples.free_blocks):
            events.append({"ph": "C", "pid": PID_FLEET, "tid": 0,
                           "ts": ts, "name": f"free_blocks_pod{pod_id}",
                           "args": {"value": column[index]}})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": OBS_SCHEMA, "version": OBS_VERSION,
                      **meta},
    }


def dumps_chrome_trace(recorder: ObsRecorder) -> str:
    """Chrome trace-event JSON text (deterministic key order)."""
    return json.dumps(to_chrome_trace(recorder), sort_keys=True,
                      separators=(",", ":")) + "\n"


def validate_chrome_trace(payload: Any) -> None:
    """Check trace-event structural validity; TraceError on violation.

    Validates the subset of the Chrome trace-event format this library
    emits and Perfetto requires: a ``traceEvents`` list whose members
    carry a known phase, integer pid/tid, a string name, and — for
    duration/instant/counter phases — finite microsecond timestamps.
    """
    if not isinstance(payload, dict):
        raise TraceError("chrome trace must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise TraceError("chrome trace needs a traceEvents array")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise TraceError(f"{where}: events must be objects")
        phase = event.get("ph")
        if phase not in ("M", "X", "i", "C"):
            raise TraceError(f"{where}: unknown phase {phase!r}")
        for key in ("pid", "tid"):
            value = event.get(key)
            if isinstance(value, bool) or not isinstance(value, int):
                raise TraceError(f"{where}: {key} must be an integer, "
                                 f"got {value!r}")
        if not isinstance(event.get("name"), str):
            raise TraceError(f"{where}: name must be a string")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or \
                    isinstance(ts, bool) or not math.isfinite(ts):
                raise TraceError(f"{where}: ts must be a finite number, "
                                 f"got {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or \
                    isinstance(dur, bool) or not math.isfinite(dur) or \
                    dur < 0:
                raise TraceError(f"{where}: dur must be a finite "
                                 f"non-negative number, got {dur!r}")


# -- JSONL export ----------------------------------------------------------------


def dumps_obs(recorder: ObsRecorder) -> str:
    """The log as versioned JSONL text (trailing newline included)."""
    lines = [json.dumps({"type": "header", "schema": OBS_SCHEMA,
                         "version": OBS_VERSION, "meta": recorder.meta},
                        sort_keys=True)]
    for span in recorder.spans:
        lines.append(json.dumps({
            "type": "span", "name": span.name, "job_id": span.job_id,
            "start": span.start, "end": span.end, "args": span.args,
        }, sort_keys=True))
    for instant in recorder.instants:
        lines.append(json.dumps({
            "type": "instant", "name": instant.name,
            "time": instant.time, "args": instant.args,
        }, sort_keys=True))
    for decision in recorder.decisions:
        lines.append(json.dumps({
            "type": "decision", "time": decision.time,
            "job_id": decision.job_id, "kind": decision.kind,
            "blocks": decision.blocks, "priority": decision.priority,
            "outcome": decision.outcome, "cause": decision.cause,
        }, sort_keys=True))
    samples = recorder.samples
    for index, time in enumerate(samples.times):
        lines.append(json.dumps({
            "type": "sample", "time": time,
            "queue_depth": samples.queue_depth[index],
            "running_jobs": samples.running_jobs[index],
            "trunk_ports_in_use": samples.trunk_ports_in_use[index],
            "free_blocks": [column[index]
                            for column in samples.free_blocks],
        }, sort_keys=True))
    return "\n".join(lines) + "\n"


def _fail(line_no: int, message: str) -> TraceError:
    return TraceError(f"observability line {line_no}: {message}")


def _number(record: dict, key: str, line_no: int) -> float:
    value = record.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(line_no, f"{key} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise _fail(line_no, f"{key} must be finite")
    return value


def _integer(record: dict, key: str, line_no: int) -> int:
    value = record.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(line_no, f"{key} must be an integer, got {value!r}")
    return value


def _string(record: dict, key: str, line_no: int) -> str:
    value = record.get(key)
    if not isinstance(value, str) or not value:
        raise _fail(line_no, f"{key} must be a non-empty string, "
                             f"got {value!r}")
    return value


def _args(record: dict, line_no: int) -> dict:
    value = record.get("args", {})
    if not isinstance(value, dict):
        raise _fail(line_no, f"args must be an object, got {value!r}")
    return value


def loads_obs(text: str) -> ObsRecorder:
    """Parse and validate JSONL observability text into a recorder."""
    recorder: ObsRecorder | None = None
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise _fail(line_no, f"not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise _fail(line_no, "expected an object")
        kind = record.get("type")
        if recorder is None:
            if kind != "header":
                raise _fail(line_no, "first record must be the header")
            if record.get("schema") != OBS_SCHEMA:
                raise _fail(line_no,
                            f"not an observability log (schema "
                            f"{record.get('schema')!r}, expected "
                            f"{OBS_SCHEMA!r})")
            if record.get("version") != OBS_VERSION:
                raise _fail(line_no,
                            f"unsupported version "
                            f"{record.get('version')!r} (this library "
                            f"reads version {OBS_VERSION})")
            meta = record.get("meta", {})
            if not isinstance(meta, dict):
                raise _fail(line_no, "meta must be an object")
            recorder = ObsRecorder(meta=meta)
            continue
        if kind == "header":
            raise _fail(line_no, "duplicate header")
        if kind == "span":
            start = _number(record, "start", line_no)
            end = _number(record, "end", line_no)
            if end < start:
                raise _fail(line_no, f"span ends at {end} before its "
                                     f"start {start}")
            recorder.spans.append(Span(
                name=_string(record, "name", line_no),
                job_id=_integer(record, "job_id", line_no),
                start=start, end=end, args=_args(record, line_no)))
        elif kind == "instant":
            recorder.instants.append(Instant(
                name=_string(record, "name", line_no),
                time=_number(record, "time", line_no),
                args=_args(record, line_no)))
        elif kind == "decision":
            outcome = _string(record, "outcome", line_no)
            if outcome not in _OUTCOMES:
                raise _fail(line_no, f"outcome must be one of "
                                     f"{_OUTCOMES}, got {outcome!r}")
            cause = _string(record, "cause", line_no)
            if cause not in _CAUSES:
                raise _fail(line_no, f"unknown decision cause {cause!r}; "
                                     f"have {sorted(_CAUSES)}")
            recorder.decisions.append(Decision(
                time=_number(record, "time", line_no),
                job_id=_integer(record, "job_id", line_no),
                kind=_string(record, "kind", line_no),
                blocks=_integer(record, "blocks", line_no),
                priority=_integer(record, "priority", line_no),
                outcome=outcome, cause=cause))
        elif kind == "sample":
            free = record.get("free_blocks")
            if not (isinstance(free, list) and
                    all(isinstance(f, int) and not isinstance(f, bool)
                        for f in free)):
                raise _fail(line_no, f"free_blocks must be a list of "
                                     f"integers, got {free!r}")
            recorder.sample(
                time=_number(record, "time", line_no),
                queue_depth=_integer(record, "queue_depth", line_no),
                running_jobs=_integer(record, "running_jobs", line_no),
                trunk_ports_in_use=_integer(record, "trunk_ports_in_use",
                                            line_no),
                free_by_pod=list(free))
        else:
            raise _fail(line_no, f"unknown record type {kind!r}")
    if recorder is None:
        raise TraceError("empty observability log: no header record")
    return recorder


# -- file round-trip -------------------------------------------------------------


def save_obs(recorder: ObsRecorder, path: str | Path) -> Path:
    """Write the log to `path`: Chrome JSON unless it ends in .jsonl."""
    target = Path(path)
    if target.suffix == ".jsonl":
        target.write_text(dumps_obs(recorder))
    else:
        target.write_text(dumps_chrome_trace(recorder))
    return target


def _from_chrome_trace(payload: dict) -> ObsRecorder:
    """Rebuild a recorder from an exported Chrome trace object.

    Lossless for spans, instants, and decisions (their args embed the
    source records); counter samples stay in counter form and are not
    rebuilt — the report only summarizes them.
    """
    validate_chrome_trace(payload)
    other = payload.get("otherData", {})
    if not isinstance(other, dict) or other.get("schema") != OBS_SCHEMA:
        raise TraceError("chrome trace was not exported by this library "
                         "(otherData.schema missing); fleet report needs "
                         "the JSONL export for foreign traces")
    meta = {key: value for key, value in other.items()
            if key not in ("schema", "version")}
    recorder = ObsRecorder(meta=meta)
    for event in payload["traceEvents"]:
        args = event.get("args", {})
        if event["ph"] == "X":
            span_args = {key: value for key, value in args.items()
                         if key != "job_id"}
            recorder.spans.append(Span(
                name=event["name"], job_id=int(args.get("job_id", -1)),
                start=event["ts"] / _MICROS,
                end=(event["ts"] + event["dur"]) / _MICROS,
                args=span_args))
        elif event["ph"] == "i":
            if "outcome" in args:
                recorder.decisions.append(Decision(
                    time=event["ts"] / _MICROS,
                    job_id=int(args.get("job_id", -1)),
                    kind=str(args.get("kind", "job")),
                    blocks=int(args.get("blocks", 0)),
                    priority=int(args.get("priority", 0)),
                    outcome=str(args["outcome"]),
                    cause=str(args.get("cause", ""))))
            else:
                recorder.instants.append(Instant(
                    name=event["name"], time=event["ts"] / _MICROS,
                    args=dict(args)))
    return recorder


def load_obs(path: str | Path) -> ObsRecorder:
    """Load either export format back into a recorder.

    A Chrome export parses as one JSON object with ``traceEvents``; a
    JSONL export parses line by line.  Everything else fails loudly.
    """
    source = Path(path)
    if not source.exists():
        raise TraceError(f"observability file {source} does not exist")
    text = source.read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return loads_obs(text)
    if isinstance(payload, dict) and "traceEvents" in payload:
        return _from_chrome_trace(payload)
    if isinstance(payload, dict) and payload.get("type") == "header":
        return loads_obs(text)  # a one-line (empty) JSONL log
    raise TraceError(f"{source} is neither a Chrome trace export nor a "
                     f"JSONL observability log")


# -- the `fleet report` renderer -------------------------------------------------


def render_report(recorder: ObsRecorder, *, limit: int = 30) -> str:
    """Human-readable digest: run identity, decisions, job timelines."""
    meta = recorder.meta
    lines = [
        f"observability report: policy={meta.get('policy', '?')} "
        f"strategy={meta.get('strategy', '?')} "
        f"seed={meta.get('seed', '?')} "
        f"pods={meta.get('num_pods', '?')}x"
        f"{meta.get('blocks_per_pod', '?')} blocks",
        f"  records: {len(recorder.spans)} spans, "
        f"{len(recorder.instants)} instants, "
        f"{len(recorder.decisions)} decisions, "
        f"{len(recorder.samples)} samples",
    ]
    placed = [d for d in recorder.decisions if d.placed]
    rejected = [d for d in recorder.decisions if not d.placed]
    lines.append(f"  placement attempts: {len(recorder.decisions)} "
                 f"({len(placed)} placed, {len(rejected)} rejected)")
    via: dict[str, int] = {}
    for decision in placed:
        via[decision.cause] = via.get(decision.cause, 0) + 1
    if via:
        lines.append("  placed via: " + "  ".join(
            f"{cause} {count}" for cause, count in
            sorted(via.items(), key=lambda item: (-item[1], item[0]))))
    causes = recorder.rejection_counts()
    if causes:
        lines.append("  top rejection causes:")
        for cause, count in causes.items():
            lines.append(f"    {cause:<26} {count}")
    per_job: dict[int, dict[str, float]] = {}
    segments: dict[int, int] = {}
    classes: dict[int, str] = {}
    for span in recorder.spans:
        buckets = per_job.setdefault(span.job_id,
                                     {"queued": 0.0, "reconfig": 0.0,
                                      "restore": 0.0, "running": 0.0})
        buckets[span.name] = buckets.get(span.name, 0.0) + span.duration
        if span.name == "running":
            segments[span.job_id] = segments.get(span.job_id, 0) + 1
        if span.job_id not in classes and "kind" in span.args:
            classes[span.job_id] = _job_class(span.args["kind"],
                                              span.args.get("blocks", 0))
    completed = {instant.args["job_id"]
                 for instant in recorder.instants
                 if instant.name == "completed"
                 and "job_id" in instant.args}
    if per_job:
        shown = sorted(per_job)[:limit]
        lines.append(f"  per-job timeline (hours; first {len(shown)} of "
                     f"{len(per_job)} jobs that ran):")
        lines.append(f"    {'job':>6} {'class':<12} {'queued':>8} "
                     f"{'reconfig':>8} {'restore':>8} {'running':>8} "
                     f"{'segs':>4}  done")
        for job_id in shown:
            buckets = per_job[job_id]
            lines.append(
                f"    {job_id:>6} {classes.get(job_id, '?'):<12} "
                f"{buckets['queued'] / HOUR:>8.2f} "
                f"{buckets['reconfig'] / HOUR:>8.2f} "
                f"{buckets['restore'] / HOUR:>8.2f} "
                f"{buckets['running'] / HOUR:>8.2f} "
                f"{segments.get(job_id, 0):>4}  "
                f"{'yes' if job_id in completed else 'no'}")
    if len(recorder.samples):
        samples = recorder.samples
        lines.append(
            f"  samples: {len(samples)} at "
            f"{meta.get('sample_every_seconds', '?')}s cadence; "
            f"queue depth max {max(samples.queue_depth)}, "
            f"running jobs max {max(samples.running_jobs)}, "
            f"trunk ports max {max(samples.trunk_ports_in_use)}")
    return "\n".join(lines)

"""Precomputed block failure/repair traces for fleet runs.

Failure times are drawn *before* the simulation starts, from a dedicated
RNG stream, so the exact same outage trace can be replayed against the
OCS and static placement policies — the apples-to-apples comparison
behind Figure 4.  Each block alternates exponential up-times (MTBF =
host MTBF / 16, since any of a block's 16 hosts takes it down) and
exponential repair times, the regime Section 1 calls the compounding
reliability problem of everything-must-work training.

Fabric-aware repair: some outages are optical — a fiber or transceiver
fails, not the hosts behind it.  The Palomar keeps spare ports "for link
testing and repairs" (Section 2.2), so when a spare is free the repair
is one mirror move onto the spare pair (:class:`repro.ocs.repair.
RepairableSwitch`) and the block is back in `port_repair_seconds`; the
suspect port stays quarantined (its spare busy) until the original
repair window ends.  With every spare in use, an optical failure waits
out the full outage like any other.  Classification draws come from
their own RNG stream and the shortened trace is still computed entirely
before the simulation, so determinism across policies is untouched.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.fleet.config import FleetConfig
from repro.ocs.repair import RepairableSwitch
from repro.ocs.switch import OpticalCircuitSwitch


@dataclass(frozen=True)
class BlockOutage:
    """One contiguous down-time of one block."""

    pod_id: int
    block_id: int
    start: float
    end: float
    via_spare: bool = False

    @property
    def duration(self) -> float:
        """Seconds the block is out."""
        return self.end - self.start


@dataclass(frozen=True)
class DrainWindow:
    """One planned capacity hole: a block pulled for deployment work.

    Unlike a :class:`BlockOutage`, a drain is scheduled — the Section
    2.4 incremental-deployment story at fleet scale: a pod's blocks
    leave service for an upgrade and return one by one as their
    hardware is ready.  Drains are policy-independent inputs exactly
    like failure traces, so the same schedule replays under OCS and
    static placement.
    """

    pod_id: int
    block_id: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Seconds the block is drained."""
        return self.end - self.start


def overlay_windows(outages: list[BlockOutage],
                    windows: list[DrainWindow] | tuple[DrainWindow, ...]
                    ) -> list[BlockOutage]:
    """Merge drain windows into a failure trace as one down/up sequence.

    The simulator drives block health with paired down/up events; a
    drain overlapping a failure must not emit interleaved ups that
    revive a block still out for the other reason.  Per block, the
    union of all down intervals is computed and re-emitted as
    :class:`BlockOutage` entries in the trace's canonical
    (start, pod, block) order.  An interval that is exactly one
    spare-repaired outage keeps its `via_spare` flag; anything merged
    loses it (the spare repair no longer bounds the hole).  With no
    windows the trace is returned unchanged, so the overlay path is
    byte-transparent for plain runs.
    """
    if not windows:
        return outages
    by_block: dict[tuple[int, int], list[tuple[float, float, bool]]] = {}
    for outage in outages:
        by_block.setdefault((outage.pod_id, outage.block_id), []).append(
            (outage.start, outage.end, outage.via_spare))
    for window in windows:
        if window.end <= window.start:
            continue
        by_block.setdefault((window.pod_id, window.block_id), []).append(
            (window.start, window.end, False))
    merged: list[BlockOutage] = []
    for (pod_id, block_id), intervals in by_block.items():
        intervals.sort()
        start, end, via_spare = intervals[0]
        coalesced = 1
        for nxt_start, nxt_end, nxt_spare in intervals[1:]:
            if nxt_start <= end:
                end = max(end, nxt_end)
                coalesced += 1
                continue
            merged.append(BlockOutage(
                pod_id=pod_id, block_id=block_id, start=start, end=end,
                via_spare=via_spare and coalesced == 1))
            start, end, via_spare = nxt_start, nxt_end, nxt_spare
            coalesced = 1
        merged.append(BlockOutage(
            pod_id=pod_id, block_id=block_id, start=start, end=end,
            via_spare=via_spare and coalesced == 1))
    merged.sort(key=lambda o: (o.start, o.pod_id, o.block_id))
    return merged


def drained_block_seconds(windows: Sequence[DrainWindow],
                          horizon: float) -> float:
    """Block-seconds of capacity the drain schedule actually removes.

    A block is either drained or it is not: windows that overlap (or
    duplicate) on the same block must count once, exactly as
    :func:`overlay_windows` coalesces them into one down interval when
    merging the schedule into the failure trace.  So the total is the
    per-block interval *union*, with every window clamped to
    [0, horizon] first — a naive ``sum(w.duration)`` double-counts any
    overlap and can report a drain_fraction above the capacity the
    schedule ever held out of service.
    """
    by_block: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for window in windows:
        start = max(0.0, min(window.start, horizon))
        end = max(0.0, min(window.end, horizon))
        if end <= start:
            continue
        by_block.setdefault((window.pod_id, window.block_id), []).append(
            (start, end))
    total = 0.0
    for intervals in by_block.values():
        intervals.sort()
        start, end = intervals[0]
        for nxt_start, nxt_end in intervals[1:]:
            if nxt_start <= end:
                end = max(end, nxt_end)
                continue
            # by_block preserves window order; sorting would reorder
            # the float sum and change the committed summary digests.
            # detlint: ignore[D005] deterministic window order
            total += end - start
            start, end = nxt_start, nxt_end
        # detlint: ignore[D005] deterministic window order (see above)
        total += end - start
    return total


def _pod_repair_switch(config: FleetConfig) -> RepairableSwitch:
    """One pod's repair-capable OCS view: a port per block plus spares."""
    return RepairableSwitch(OpticalCircuitSwitch(
        name="pod-trunk-repair",
        num_ports=2 * config.blocks_per_pod + config.spare_ports,
        spare_ports=config.spare_ports))


def apply_spare_repairs(config: FleetConfig, outages: list[BlockOutage],
                        rng: np.random.Generator) -> list[BlockOutage]:
    """Shorten optical-port outages that a spare port can absorb.

    Walks the trace in start order (one classification draw per outage,
    so the repair stream is consumed deterministically), moving each
    optical failure's circuit onto a spare of its pod's
    :class:`RepairableSwitch` when one is free.  The failed port stays
    under test — and its spare busy — until the *original* repair window
    ends, so a burst of optical failures can still exhaust the spares
    and fall back to full outages.
    """
    switches = [_pod_repair_switch(config) for _ in range(config.num_pods)]
    # (release time, pod, port) for ports under test, released in order.
    pending: list[tuple[float, int, int]] = []
    repaired: list[BlockOutage] = []
    for outage in outages:
        while pending and pending[0][0] <= outage.start:
            _, pod_id, port = heapq.heappop(pending)
            switches[pod_id].repair_port(port)
        optical = bool(rng.random() < config.optical_failure_fraction)
        switch = switches[outage.pod_id]
        if not optical or switch.spares_available == 0:
            repaired.append(outage)
            continue
        # The block's trunk fiber pair: '+' port b, '-' port b + blocks.
        port = outage.block_id
        if switch.switch.peer_of(port) is None:
            switch.switch.connect(port, config.blocks_per_pod + port)
        switch.fail_port(port)
        heapq.heappush(pending, (outage.end, outage.pod_id, port))
        repaired.append(BlockOutage(
            pod_id=outage.pod_id, block_id=outage.block_id,
            start=outage.start,
            end=min(outage.start + config.port_repair_seconds, outage.end),
            via_spare=True))
    return repaired


def build_failure_trace(config: FleetConfig, rng: np.random.Generator,
                        repair_rng: np.random.Generator | None = None
                        ) -> list[BlockOutage]:
    """Every outage inside the horizon, sorted by start time.

    Draws are made block-by-block in (pod, block) order so the trace
    depends only on the config and the RNG state, never on scheduling.
    With `repair_rng` and a nonzero `optical_failure_fraction`, the
    trace then passes through :func:`apply_spare_repairs`; the up-time
    draws are untouched (a block's next failure is still drawn from the
    original repair completion), so enabling repairs never reshuffles
    when failures strike.
    """
    outages: list[BlockOutage] = []
    for pod_id in range(config.num_pods):
        for block_id in range(config.blocks_per_pod):
            clock = 0.0
            while True:
                clock += float(rng.exponential(config.block_mtbf_seconds))
                if clock >= config.horizon_seconds:
                    break
                repair = float(rng.exponential(config.mean_repair_seconds))
                end = min(clock + repair, config.horizon_seconds)
                outages.append(BlockOutage(pod_id=pod_id, block_id=block_id,
                                           start=clock, end=end))
                clock = end
    outages.sort(key=lambda o: (o.start, o.pod_id, o.block_id))
    if repair_rng is not None and config.optical_failure_fraction > 0 and \
            config.spare_ports > 0:
        outages = apply_spare_repairs(config, outages, repair_rng)
    return outages


def downtime_block_seconds(outages: list[BlockOutage]) -> float:
    """Total block-seconds of capacity lost to the trace."""
    return sum(outage.duration for outage in outages)


def spare_repair_count(outages: list[BlockOutage]) -> int:
    """Outages absorbed by a spare-port repair."""
    return sum(1 for outage in outages if outage.via_spare)

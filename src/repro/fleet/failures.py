"""Precomputed block failure/repair traces for fleet runs.

Failure times are drawn *before* the simulation starts, from a dedicated
RNG stream, so the exact same outage trace can be replayed against the
OCS and static placement policies — the apples-to-apples comparison
behind Figure 4.  Each block alternates exponential up-times (MTBF =
host MTBF / 16, since any of a block's 16 hosts takes it down) and
exponential repair times, the regime Section 1 calls the compounding
reliability problem of everything-must-work training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fleet.config import FleetConfig


@dataclass(frozen=True)
class BlockOutage:
    """One contiguous down-time of one block."""

    pod_id: int
    block_id: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Seconds the block is out."""
        return self.end - self.start


def build_failure_trace(config: FleetConfig,
                        rng: np.random.Generator) -> list[BlockOutage]:
    """Every outage inside the horizon, sorted by start time.

    Draws are made block-by-block in (pod, block) order so the trace
    depends only on the config and the RNG state, never on scheduling.
    """
    outages: list[BlockOutage] = []
    for pod_id in range(config.num_pods):
        for block_id in range(config.blocks_per_pod):
            clock = 0.0
            while True:
                clock += float(rng.exponential(config.block_mtbf_seconds))
                if clock >= config.horizon_seconds:
                    break
                repair = float(rng.exponential(config.mean_repair_seconds))
                end = min(clock + repair, config.horizon_seconds)
                outages.append(BlockOutage(pod_id=pod_id, block_id=block_id,
                                           start=clock, end=end))
                clock = end
    outages.sort(key=lambda o: (o.start, o.pod_id, o.block_id))
    return outages


def downtime_block_seconds(outages: list[BlockOutage]) -> float:
    """Total block-seconds of capacity lost to the trace."""
    return sum(outage.duration for outage in outages)

"""Configuration for a multi-pod fleet simulation.

A fleet is several TPU v4 pods (each a grid of 4x4x4 blocks joined by an
OCS fabric, Section 2.2) run as one discrete-event simulation: jobs
arrive, queue, get placed, fail, checkpoint-restart, and finish.  All
stochastic inputs derive from one integer seed through independent
:func:`repro.sim.rng.spawn_rngs` streams, so a run is reproducible and
the failure trace is identical across placement policies.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.core.scheduler import PlacementStrategy
from repro.errors import ConfigurationError
from repro.ocs.switch import SWITCH_TIME_SECONDS
from repro.units import DAY, HOUR, MINUTE

#: RNG stream indices carved out of the config seed (see spawn_rngs).
#: Appending streams is safe: SeedSequence.spawn derives children
#: independently, so adding STREAM_REPAIRS never perturbed the first
#: three streams or any pre-existing trace.
STREAM_ARRIVALS = 0
STREAM_SHAPES = 1
STREAM_FAILURES = 2
STREAM_REPAIRS = 3
NUM_STREAMS = 4


@dataclass(frozen=True)
class FleetConfig:
    """Everything that defines one fleet scenario.

    Attributes:
        num_pods: pods in the fleet; each pod schedules independently but
            shares the arrival queue.
        blocks_per_pod: 4x4x4 blocks per pod; must be a perfect cube so
            the static-wiring baseline has a physical block grid.
        horizon_seconds: simulated wall-clock length of the run.
        arrival_window_seconds: jobs stop arriving after this point so
            late arrivals do not dominate the unfinished-job count.
        mean_interarrival_seconds: exponential job inter-arrival time.
        mean_job_seconds: mean useful work per training job (exponential).
        max_job_blocks: cap on sampled slice size, in blocks; the Table 2
            distribution is truncated and renormalized to shapes at or
            under the cap.  At or under `blocks_per_pod`, shapes are
            additionally filtered to block-grid extents that fit the
            pod's cubic grid so either placement policy can in principle
            host every job; above it the machine-wide mix is used —
            those jobs *must* span pods, which only an OCS machine with
            cross-pod placement enabled can serve.
        serving_fraction: share of arrivals that are serving deployments
            (forward-only DLRM residencies, Section 3.1) instead of
            training jobs.
        prod_fraction: share of training arrivals in the production
            priority band (the rest are best-effort batch).
        serving_qps: fleet QPS target used to size each serving slice via
            :func:`repro.models.serving.chips_for_qps`.
        mean_serving_seconds: mean residency of one serving deployment.
        host_mtbf_seconds: per-host MTBF; a block (16 hosts) fails at
            16x this rate, the Section 1 "everything must work" regime.
        mean_repair_seconds: exponential block repair time.
        checkpoint_seconds: cost of writing one checkpoint.
        restore_seconds: detect + reschedule + reload after a failure.
        preempt_priority: jobs at or above this priority may preempt
            lower-priority running jobs when no free placement exists.
        strategy: default placement strategy (first_fit, best_fit, or
            defrag); a :class:`FleetSimulator.run` call may override it.
        reconfig_base_seconds: fixed drain/validate window of one OCS
            reconfiguration batch — light-level checks before the slice's
            links carry traffic.  Zero models PR 1's instantaneous
            placement.
        ocs_switch_seconds: per-mirror-move time of one switch, defaulting
            to the Palomar's "switch in milliseconds"
            (:data:`repro.ocs.switch.SWITCH_TIME_SECONDS`).  Switches run
            in parallel; moves on one switch serialize.
        defrag_max_moves: migrations one defragmentation may trigger;
            0 makes the defrag strategy place exactly like best_fit.
        cross_pod: allow slices whose block demand exceeds one pod to be
            placed across pods over the machine-level trunk OCS layer
            (OCS policy only — a statically-cabled machine physically
            cannot span pods).  Disabling it reproduces the per-pod-only
            scheduler bit for bit.
        trunk_ports: block-level trunk fibers each pod terminates on the
            machine OCS bank; every cross-pod block adjacency holds one
            port on both endpoint pods for the life of the slice.
        cross_pod_preemption: allow machine-wide contention resolution
            for jobs whose block demand exceeds one pod: a preemptor
            may assemble a *cross-pod* placement out of evictions
            (candidate victims credited hypothetically — their blocks
            per pod, plus the trunk ports a cross-pod victim would
            hand back — and evicted only once a victim set yields a
            real machine-wide plan), and the defrag strategy may
            checkpoint-migrate cross-pod donors into snugger
            placements to free trunk ports.  Disabling it reproduces
            the pod-local contention behavior of earlier PRs, where
            oversized jobs under pressure could only queue.
        trunk_bandwidth_tax: fractional slowdown of a slice whose links
            all ride the trunk layer; an actual placement pays the tax
            scaled by its cross-link share, modeling the bisection hit
            of leaving the pod.
        trunk_reconfig_seconds: extra drain/validate window a rewiring
            pays when it programs trunk circuits (light checked end to
            end across two pod fabrics and the machine bank).
        spare_ports: spare OCS ports per pod kept "for link testing and
            repairs" (Section 2.2); an optical-port failure with a spare
            free is repaired by one mirror move instead of waiting out a
            full block repair.
        optical_failure_fraction: share of block outages that are
            optical-port failures (fiber/transceiver) rather than host
            hardware, and thus spare-port repairable.  Zero keeps the
            failure trace identical to the pre-repair model.
        port_repair_seconds: block downtime of a spare-port repair — the
            mirror move plus light-level validation, orders of magnitude
            under `mean_repair_seconds`.
        deploy_schedule: name of a deployment-drain schedule from
            :data:`repro.fleet.scenario.SCHEDULES` to overlay on runs
            of this config ('' = none).  The name is resolved at use
            time (CLI/experiments) so configs stay a plain data layer;
            recorded traces store the materialized windows, never the
            name.
        observability: record the run's observability log (job
            lifecycle spans, the scheduler decision log, time-series
            samples; see :mod:`repro.fleet.obs`).  Off by default: the
            disabled path holds the shared no-op recorder and the
            dispatch loop pays one attribute check per queued job.
            Enabling it never changes results — the recorder only
            observes — but the extra sampler events grow
            `events_fired`.
        obs_sample_every_seconds: sim-time cadence of the time-series
            sampler (free blocks per pod, trunk-port occupancy, queue
            depth, running jobs) when observability is on.
        serve_scenario: name of an online-serving traffic scenario from
            :data:`repro.fleet.serve.SCENARIOS` to run on top of this
            config ('' = no request-level serving tier).  Like
            `deploy_schedule`, the name resolves at use time so the
            config stays a plain data layer; the scenario defines the
            served models, their diurnal QPS curves, surge windows, and
            SLO targets.
        serve_autoscaler: autoscaler policy for the serving tier —
            "reactive" (size pools to current demand), "predictive"
            (size to demand one lead-time ahead on the known curve),
            "scheduled" (precomputed per-hour plan), or "static"
            (peak-pinned pools, the capacity-split baseline).  Ignored
            when `serve_scenario` is ''.
        determinism: execution tier.  "strict" (default) runs the
            per-event callback engine whose outputs are byte-identical
            to the seed (gated by the 100-seed digest file).  "fast"
            runs the batched engine (:mod:`repro.fleet.engine_fast`):
            same-timestamp events drain as one batch, job accounting is
            columnar, and telemetry accumulates in vectorized segment
            sums — self-deterministic (same seed, same bytes, every
            run) and statistically equivalent to strict (per-metric
            ensemble means gated at 2%), but individual traces may
            order same-time rescues differently.  Fast mode refuses
            observability (the decision log is defined per-event).
    """

    num_pods: int = 2
    blocks_per_pod: int = 64
    horizon_seconds: float = 2 * DAY
    arrival_window_seconds: float = 1.5 * DAY
    mean_interarrival_seconds: float = 8 * MINUTE
    mean_job_seconds: float = 6 * HOUR
    max_job_blocks: int = 16
    serving_fraction: float = 0.1
    prod_fraction: float = 0.3
    serving_qps: float = 2e7
    mean_serving_seconds: float = 1 * DAY
    host_mtbf_seconds: float = 120 * DAY
    mean_repair_seconds: float = 4 * HOUR
    checkpoint_seconds: float = 30.0
    restore_seconds: float = 8 * MINUTE
    preempt_priority: int = 2
    strategy: PlacementStrategy = PlacementStrategy.FIRST_FIT
    reconfig_base_seconds: float = 30.0
    ocs_switch_seconds: float = SWITCH_TIME_SECONDS
    defrag_max_moves: int = 3
    cross_pod: bool = True
    trunk_ports: int = 48
    cross_pod_preemption: bool = True
    trunk_bandwidth_tax: float = 0.1
    trunk_reconfig_seconds: float = 15.0
    spare_ports: int = 8
    optical_failure_fraction: float = 0.0
    port_repair_seconds: float = 300.0
    deploy_schedule: str = ""
    serve_scenario: str = ""
    serve_autoscaler: str = "reactive"
    observability: bool = False
    obs_sample_every_seconds: float = 15 * MINUTE
    determinism: str = "strict"

    def __post_init__(self) -> None:
        if isinstance(self.strategy, str):  # accept CLI/preset spellings
            try:
                object.__setattr__(self, "strategy",
                                   PlacementStrategy(self.strategy))
            except ValueError as exc:
                raise ConfigurationError(
                    f"unknown placement strategy {self.strategy!r}; have "
                    f"{[s.value for s in PlacementStrategy]}") from exc
        side = round(self.blocks_per_pod ** (1 / 3))
        if side ** 3 != self.blocks_per_pod:
            raise ConfigurationError(
                f"blocks_per_pod must be a perfect cube, got "
                f"{self.blocks_per_pod}")
        if self.num_pods < 1:
            raise ConfigurationError("need at least one pod")
        if self.horizon_seconds <= 0 or self.arrival_window_seconds <= 0:
            raise ConfigurationError("horizon and arrival window must be > 0")
        if self.arrival_window_seconds > self.horizon_seconds:
            raise ConfigurationError(
                "arrival window cannot outlive the horizon")
        if self.mean_interarrival_seconds <= 0 or self.mean_job_seconds <= 0:
            raise ConfigurationError("timing means must be > 0")
        if not 0.0 <= self.serving_fraction <= 1.0:
            raise ConfigurationError("serving_fraction must be in [0, 1]")
        if not 0.0 <= self.prod_fraction <= 1.0:
            raise ConfigurationError("prod_fraction must be in [0, 1]")
        if self.max_job_blocks < 1 or self.max_job_blocks > self.total_blocks:
            raise ConfigurationError(
                f"max_job_blocks must be in [1, {self.total_blocks}]")
        if self.host_mtbf_seconds <= 0 or self.mean_repair_seconds <= 0:
            raise ConfigurationError("MTBF and repair time must be > 0")
        if self.checkpoint_seconds <= 0:
            raise ConfigurationError(
                "checkpoint_seconds must be > 0 (Young/Daly needs a "
                "finite optimal interval)")
        if self.restore_seconds < 0:
            raise ConfigurationError("restore_seconds must be >= 0")
        if self.serving_fraction > 0 and self.serving_qps <= 0:
            raise ConfigurationError("serving_qps must be > 0")
        if self.mean_serving_seconds <= 0:
            raise ConfigurationError("mean_serving_seconds must be > 0")
        if self.reconfig_base_seconds < 0 or self.ocs_switch_seconds < 0:
            raise ConfigurationError(
                "reconfiguration latencies must be >= 0")
        if self.defrag_max_moves < 0:
            raise ConfigurationError("defrag_max_moves must be >= 0")
        if self.trunk_ports < 0:
            raise ConfigurationError("trunk_ports must be >= 0")
        if self.trunk_bandwidth_tax < 0:
            raise ConfigurationError("trunk_bandwidth_tax must be >= 0")
        if self.trunk_reconfig_seconds < 0:
            raise ConfigurationError("trunk_reconfig_seconds must be >= 0")
        if self.spare_ports < 0:
            raise ConfigurationError("spare_ports must be >= 0")
        if not 0.0 <= self.optical_failure_fraction <= 1.0:
            raise ConfigurationError(
                "optical_failure_fraction must be in [0, 1]")
        if self.port_repair_seconds < 0:
            raise ConfigurationError("port_repair_seconds must be >= 0")
        if not isinstance(self.deploy_schedule, str):
            raise ConfigurationError(
                "deploy_schedule must be a schedule name string ('' for "
                "none); schedules are materialized by repro.fleet.scenario")
        if not isinstance(self.serve_scenario, str):
            raise ConfigurationError(
                "serve_scenario must be a scenario name string ('' for "
                "none); scenarios are materialized by repro.fleet.serve")
        if self.serve_autoscaler not in (
                "reactive", "predictive", "scheduled", "static"):
            raise ConfigurationError(
                f"serve_autoscaler must be one of 'reactive', "
                f"'predictive', 'scheduled', or 'static', got "
                f"{self.serve_autoscaler!r}")
        if self.obs_sample_every_seconds <= 0:
            raise ConfigurationError(
                "obs_sample_every_seconds must be > 0")
        if self.determinism not in ("strict", "fast"):
            raise ConfigurationError(
                f"determinism must be 'strict' or 'fast', got "
                f"{self.determinism!r}")
        if self.determinism == "fast" and self.observability:
            raise ConfigurationError(
                "determinism='fast' cannot record observability: the "
                "decision log and span tracer are defined per-event; "
                "use the strict tier for observed runs")

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain JSON-safe dict (strategy as its value).

        The round-trip contract is lossless:
        ``FleetConfig.from_dict(c.to_dict()) == c`` for every valid
        config, byte-identical through ``json.dumps`` as well — every
        field is an int, float, bool, or str once the strategy enum is
        flattened to its spelling.
        """
        out = dataclasses.asdict(self)
        out["strategy"] = self.strategy.value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FleetConfig":
        """Build a config from :meth:`to_dict` output.

        Unknown keys raise :class:`ConfigurationError` instead of being
        silently dropped — a typo'd override should fail loudly, not
        quietly run the default.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown FleetConfig key(s) {unknown}; have "
                f"{sorted(known)}")
        return cls(**data)

    def with_overrides(self, **overrides: Any) -> "FleetConfig":
        """A copy with the named fields replaced, validated end to end.

        The public spelling of ``dataclasses.replace`` for this config:
        unknown field names raise :class:`ConfigurationError` (replace
        raises a bare TypeError), and the copy re-runs
        ``__post_init__`` so an override can never smuggle in an
        invalid combination.
        """
        if not overrides:
            return self
        known = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown FleetConfig field(s) {unknown}; have "
                f"{sorted(known)}")
        return dataclasses.replace(self, **overrides)

    @property
    def total_blocks(self) -> int:
        """Blocks across every pod."""
        return self.num_pods * self.blocks_per_pod

    @property
    def pod_grid_side(self) -> int:
        """Side of a pod's cubic block grid (4 for a 64-block pod)."""
        return round(self.blocks_per_pod ** (1 / 3))

    @property
    def machine_wide_jobs(self) -> bool:
        """True when the job mix may demand more blocks than one pod."""
        return self.max_job_blocks > self.blocks_per_pod

    @property
    def trunk_capacity(self) -> int:
        """Trunk ports installed across every pod."""
        return self.num_pods * self.trunk_ports

    @property
    def block_mtbf_seconds(self) -> float:
        """MTBF of one block: any of its 16 hosts down takes it out."""
        from repro.core.block import HOSTS_PER_BLOCK
        return self.host_mtbf_seconds / HOSTS_PER_BLOCK

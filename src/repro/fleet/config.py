"""Configuration for a multi-pod fleet simulation.

A fleet is several TPU v4 pods (each a grid of 4x4x4 blocks joined by an
OCS fabric, Section 2.2) run as one discrete-event simulation: jobs
arrive, queue, get placed, fail, checkpoint-restart, and finish.  All
stochastic inputs derive from one integer seed through independent
:func:`repro.sim.rng.spawn_rngs` streams, so a run is reproducible and
the failure trace is identical across placement policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import PlacementStrategy
from repro.errors import ConfigurationError
from repro.ocs.switch import SWITCH_TIME_SECONDS
from repro.units import DAY, HOUR, MINUTE

#: RNG stream indices carved out of the config seed (see spawn_rngs).
STREAM_ARRIVALS = 0
STREAM_SHAPES = 1
STREAM_FAILURES = 2


@dataclass(frozen=True)
class FleetConfig:
    """Everything that defines one fleet scenario.

    Attributes:
        num_pods: pods in the fleet; each pod schedules independently but
            shares the arrival queue.
        blocks_per_pod: 4x4x4 blocks per pod; must be a perfect cube so
            the static-wiring baseline has a physical block grid.
        horizon_seconds: simulated wall-clock length of the run.
        arrival_window_seconds: jobs stop arriving after this point so
            late arrivals do not dominate the unfinished-job count.
        mean_interarrival_seconds: exponential job inter-arrival time.
        mean_job_seconds: mean useful work per training job (exponential).
        max_job_blocks: cap on sampled slice size, in blocks; the Table 2
            distribution is truncated and renormalized to shapes at or
            under the cap (and whose block-grid extent fits the pod's
            cubic grid) so every job can in principle fit a pod under
            either placement policy.
        serving_fraction: share of arrivals that are serving deployments
            (forward-only DLRM residencies, Section 3.1) instead of
            training jobs.
        prod_fraction: share of training arrivals in the production
            priority band (the rest are best-effort batch).
        serving_qps: fleet QPS target used to size each serving slice via
            :func:`repro.models.serving.chips_for_qps`.
        mean_serving_seconds: mean residency of one serving deployment.
        host_mtbf_seconds: per-host MTBF; a block (16 hosts) fails at
            16x this rate, the Section 1 "everything must work" regime.
        mean_repair_seconds: exponential block repair time.
        checkpoint_seconds: cost of writing one checkpoint.
        restore_seconds: detect + reschedule + reload after a failure.
        preempt_priority: jobs at or above this priority may preempt
            lower-priority running jobs when no free placement exists.
        strategy: default placement strategy (first_fit, best_fit, or
            defrag); a :class:`FleetSimulator.run` call may override it.
        reconfig_base_seconds: fixed drain/validate window of one OCS
            reconfiguration batch — light-level checks before the slice's
            links carry traffic.  Zero models PR 1's instantaneous
            placement.
        ocs_switch_seconds: per-mirror-move time of one switch, defaulting
            to the Palomar's "switch in milliseconds"
            (:data:`repro.ocs.switch.SWITCH_TIME_SECONDS`).  Switches run
            in parallel; moves on one switch serialize.
        defrag_max_moves: migrations one defragmentation may trigger;
            0 makes the defrag strategy place exactly like best_fit.
    """

    num_pods: int = 2
    blocks_per_pod: int = 64
    horizon_seconds: float = 2 * DAY
    arrival_window_seconds: float = 1.5 * DAY
    mean_interarrival_seconds: float = 8 * MINUTE
    mean_job_seconds: float = 6 * HOUR
    max_job_blocks: int = 16
    serving_fraction: float = 0.1
    prod_fraction: float = 0.3
    serving_qps: float = 2e7
    mean_serving_seconds: float = 1 * DAY
    host_mtbf_seconds: float = 120 * DAY
    mean_repair_seconds: float = 4 * HOUR
    checkpoint_seconds: float = 30.0
    restore_seconds: float = 8 * MINUTE
    preempt_priority: int = 2
    strategy: PlacementStrategy = PlacementStrategy.FIRST_FIT
    reconfig_base_seconds: float = 30.0
    ocs_switch_seconds: float = SWITCH_TIME_SECONDS
    defrag_max_moves: int = 3

    def __post_init__(self) -> None:
        if isinstance(self.strategy, str):  # accept CLI/preset spellings
            try:
                object.__setattr__(self, "strategy",
                                   PlacementStrategy(self.strategy))
            except ValueError as exc:
                raise ConfigurationError(
                    f"unknown placement strategy {self.strategy!r}; have "
                    f"{[s.value for s in PlacementStrategy]}") from exc
        side = round(self.blocks_per_pod ** (1 / 3))
        if side ** 3 != self.blocks_per_pod:
            raise ConfigurationError(
                f"blocks_per_pod must be a perfect cube, got "
                f"{self.blocks_per_pod}")
        if self.num_pods < 1:
            raise ConfigurationError("need at least one pod")
        if self.horizon_seconds <= 0 or self.arrival_window_seconds <= 0:
            raise ConfigurationError("horizon and arrival window must be > 0")
        if self.arrival_window_seconds > self.horizon_seconds:
            raise ConfigurationError(
                "arrival window cannot outlive the horizon")
        if self.mean_interarrival_seconds <= 0 or self.mean_job_seconds <= 0:
            raise ConfigurationError("timing means must be > 0")
        if not 0.0 <= self.serving_fraction <= 1.0:
            raise ConfigurationError("serving_fraction must be in [0, 1]")
        if not 0.0 <= self.prod_fraction <= 1.0:
            raise ConfigurationError("prod_fraction must be in [0, 1]")
        if self.max_job_blocks < 1 or self.max_job_blocks > self.blocks_per_pod:
            raise ConfigurationError(
                f"max_job_blocks must be in [1, {self.blocks_per_pod}]")
        if self.host_mtbf_seconds <= 0 or self.mean_repair_seconds <= 0:
            raise ConfigurationError("MTBF and repair time must be > 0")
        if self.checkpoint_seconds <= 0:
            raise ConfigurationError(
                "checkpoint_seconds must be > 0 (Young/Daly needs a "
                "finite optimal interval)")
        if self.restore_seconds < 0:
            raise ConfigurationError("restore_seconds must be >= 0")
        if self.serving_fraction > 0 and self.serving_qps <= 0:
            raise ConfigurationError("serving_qps must be > 0")
        if self.mean_serving_seconds <= 0:
            raise ConfigurationError("mean_serving_seconds must be > 0")
        if self.reconfig_base_seconds < 0 or self.ocs_switch_seconds < 0:
            raise ConfigurationError(
                "reconfiguration latencies must be >= 0")
        if self.defrag_max_moves < 0:
            raise ConfigurationError("defrag_max_moves must be >= 0")

    @property
    def total_blocks(self) -> int:
        """Blocks across every pod."""
        return self.num_pods * self.blocks_per_pod

    @property
    def pod_grid_side(self) -> int:
        """Side of a pod's cubic block grid (4 for a 64-block pod)."""
        return round(self.blocks_per_pod ** (1 / 3))

    @property
    def block_mtbf_seconds(self) -> float:
        """MTBF of one block: any of its 16 hosts down takes it out."""
        from repro.core.block import HOSTS_PER_BLOCK
        return self.host_mtbf_seconds / HOSTS_PER_BLOCK

"""Named fleet scenarios for the CLI, experiments, and tests.

Presets trade fidelity for runtime: `tiny` keeps unit tests fast,
`small` is the CLI/CI smoke scenario, `medium` stresses queueing across
four pods, `serving` skews the mix toward Section 3.1 serving
residencies to exercise preemption, `replay` is the compact
record/replay round-trip scenario, `deploy_week` overlays the
'deploy_week' rollout-drain schedule on a week of live traffic
(Section 2.4 incremental deployment against real load), and `large` is
the machine-wide scenario — eight small pods whose job mix includes Table 2's biggest
slices (48 blocks, against 27-block pods), so those jobs *must* span
pods over the trunk OCS layer, and whose failures include spare-port-
repairable optical faults.  `hyperscale` scales that machine-wide
scenario to 64 pods for the vectorized event core (and the `fleet
sweep` multi-seed runner), and `edge` is the contention edge-case
scenario, tuned so cross-pod preemption (and, rarely, trunk-freeing
defrag) fires under generated load, anchoring the record/replay
byte-identity smoke for the machine-wide contention paths.

`serve_surge` layers the online serving tier (request-level QPS
curves, replica pools, autoscaling) onto the deploy-week fleet, with a
launch surge timed into the rollout drain.

Every preset carries the config's placement strategy (first_fit by
default), the OCS reconfiguration-latency knobs, and the trunk/spare
sizing; the CLI's `--strategy`/`--reconfig-seconds`/`--trunk-ports`/
`--cross-pod` flags override them per run via
:meth:`~repro.fleet.config.FleetConfig.with_overrides`.

All presets default to the `strict` determinism tier (byte-identical,
digest-gated replay).  None pin `determinism="fast"`: the fast tier is
a per-run choice — `--determinism fast` on the CLI, or
``config.with_overrides(determinism="fast")`` in code — so the same
preset can anchor both the byte-identity gates (strict) and the
statistical-equivalence gate (fast) on identical generated inputs.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fleet.config import FleetConfig
from repro.units import DAY, HOUR, MINUTE

PRESETS: dict[str, FleetConfig] = {
    # One pod, one simulated day: fast enough for unit tests.
    "tiny": FleetConfig(
        num_pods=1, blocks_per_pod=64,
        horizon_seconds=1 * DAY, arrival_window_seconds=18 * HOUR,
        mean_interarrival_seconds=6 * MINUTE, mean_job_seconds=3 * HOUR,
        max_job_blocks=8, serving_fraction=0.1,
        mean_serving_seconds=12 * HOUR,
        host_mtbf_seconds=60 * DAY, mean_repair_seconds=2 * HOUR),
    # Two pods, two days, heavier jobs: the CI smoke scenario.
    "small": FleetConfig(
        num_pods=2, blocks_per_pod=64,
        horizon_seconds=2 * DAY, arrival_window_seconds=1.5 * DAY,
        mean_interarrival_seconds=7 * MINUTE, mean_job_seconds=6 * HOUR,
        max_job_blocks=16, serving_fraction=0.1,
        host_mtbf_seconds=120 * DAY, mean_repair_seconds=4 * HOUR),
    # Four pods, a simulated week, shapes up to a half pod.
    "medium": FleetConfig(
        num_pods=4, blocks_per_pod=64,
        horizon_seconds=7 * DAY, arrival_window_seconds=6 * DAY,
        mean_interarrival_seconds=7 * MINUTE, mean_job_seconds=10 * HOUR,
        max_job_blocks=32, serving_fraction=0.1,
        host_mtbf_seconds=120 * DAY, mean_repair_seconds=4 * HOUR),
    # Eight pods, machine-wide jobs: Table 2's 48-block slices cannot
    # fit a 27-block pod, so cross-pod placement is load-bearing.
    # Optical faults (30% of outages) repair via the pods' 8 spare
    # ports in minutes instead of hours when spares remain.
    "large": FleetConfig(
        num_pods=8, blocks_per_pod=27,
        horizon_seconds=4 * DAY, arrival_window_seconds=3 * DAY,
        mean_interarrival_seconds=12 * MINUTE, mean_job_seconds=8 * HOUR,
        max_job_blocks=48, serving_fraction=0.1,
        host_mtbf_seconds=120 * DAY, mean_repair_seconds=4 * HOUR,
        strategy="best_fit",
        cross_pod=True, trunk_ports=64,
        spare_ports=8, optical_failure_fraction=0.3,
        port_repair_seconds=5 * MINUTE),
    # Sixty-four pods behind one trunk layer: the scale target of the
    # vectorized event core.  Same per-pod sizing and machine-wide job
    # mix as `large` (48-block slices must span 27-block pods), but
    # eight times the pods and a denser arrival stream, so the dispatch
    # loop, the switch banks, and the failure overlay all run at fleet
    # scale.  Kept to two simulated days so `fleet sweep` can fan a
    # hundred seeds across worker processes in CI-compatible time.
    "hyperscale": FleetConfig(
        num_pods=64, blocks_per_pod=27,
        horizon_seconds=2 * DAY, arrival_window_seconds=1.5 * DAY,
        mean_interarrival_seconds=2 * MINUTE, mean_job_seconds=6 * HOUR,
        max_job_blocks=48, serving_fraction=0.1,
        host_mtbf_seconds=120 * DAY, mean_repair_seconds=4 * HOUR,
        strategy="best_fit",
        cross_pod=True, trunk_ports=64,
        spare_ports=8, optical_failure_fraction=0.3,
        port_repair_seconds=5 * MINUTE),
    # Record/replay smoke scenario: between tiny and small — enough
    # traffic that a trace exercises every record type, short enough
    # that `fleet record` + `fleet replay` round-trips stay fast in CI
    # and the fleet_replay experiment.
    "replay": FleetConfig(
        num_pods=2, blocks_per_pod=64,
        horizon_seconds=1 * DAY, arrival_window_seconds=18 * HOUR,
        mean_interarrival_seconds=5 * MINUTE, mean_job_seconds=3 * HOUR,
        max_job_blocks=16, serving_fraction=0.1,
        mean_serving_seconds=12 * HOUR,
        host_mtbf_seconds=60 * DAY, mean_repair_seconds=2 * HOUR),
    # A week of live traffic with two staggered pod upgrades (the
    # 'deploy_week' drain schedule): pod 3 pulled on day 1, pod 2 on
    # day 3, each returning block by block over ~1.5 days as hardware
    # lands — §2.4 incremental deployment composed with §2.5 placement.
    "deploy_week": FleetConfig(
        num_pods=4, blocks_per_pod=64,
        horizon_seconds=7 * DAY, arrival_window_seconds=6 * DAY,
        mean_interarrival_seconds=7 * MINUTE, mean_job_seconds=10 * HOUR,
        max_job_blocks=32, serving_fraction=0.1,
        host_mtbf_seconds=120 * DAY, mean_repair_seconds=4 * HOUR,
        strategy="best_fit", deploy_schedule="deploy_week"),
    # Contention edge-case scenario: small pods under a machine-wide
    # mix, a low preemption bar (production training may evict batch),
    # the defrag strategy, and a trunk bank tight enough that
    # concurrent cross-pod slices fight over ports — so cross-pod
    # preemption and trunk-freeing defrag both fire under generated
    # load.  The record/replay smoke rides this preset: evictions and
    # migrations are scheduler *decisions*, not inputs, so a recorded
    # trace must replay byte-identically with every new path enabled.
    "edge": FleetConfig(
        num_pods=4, blocks_per_pod=8,
        horizon_seconds=1 * DAY, arrival_window_seconds=18 * HOUR,
        mean_interarrival_seconds=5 * MINUTE, mean_job_seconds=2 * HOUR,
        max_job_blocks=16, serving_fraction=0.05,
        prod_fraction=0.2, mean_serving_seconds=12 * HOUR,
        host_mtbf_seconds=60 * DAY, mean_repair_seconds=2 * HOUR,
        preempt_priority=1, strategy="defrag", defrag_max_moves=2,
        cross_pod=True, trunk_ports=20,
        # Contention swings fast here (2h jobs on 8-block pods); the
        # observability sampler needs a tighter cadence than the
        # 15-minute default to resolve queue-depth spikes.
        obs_sample_every_seconds=5 * MINUTE),
    # The online-serving stress scenario: deploy_week's fleet and drain
    # schedule with the request-level serving tier on top — two diurnal
    # model pools (scenario 'surge') whose ads pool takes a 3x launch
    # spike exactly as the schedule pulls pod 3, so the autoscaler must
    # triple a pool while a quarter of the fleet drains and outage
    # failovers interrupt live replicas.  The autoscaler-vs-static
    # capacity-split benchmark and the serve CI smoke ride this preset.
    "serve_surge": FleetConfig(
        num_pods=4, blocks_per_pod=64,
        horizon_seconds=7 * DAY, arrival_window_seconds=6 * DAY,
        mean_interarrival_seconds=7 * MINUTE, mean_job_seconds=10 * HOUR,
        max_job_blocks=32, serving_fraction=0.1,
        host_mtbf_seconds=120 * DAY, mean_repair_seconds=4 * HOUR,
        strategy="best_fit", deploy_schedule="deploy_week",
        serve_scenario="surge"),
    # Serving-heavy mix: long residencies plus background training.
    "serving": FleetConfig(
        num_pods=2, blocks_per_pod=64,
        horizon_seconds=3 * DAY, arrival_window_seconds=2 * DAY,
        mean_interarrival_seconds=8 * MINUTE, mean_job_seconds=4 * HOUR,
        max_job_blocks=16, serving_fraction=0.4,
        mean_serving_seconds=1 * DAY,
        host_mtbf_seconds=120 * DAY, mean_repair_seconds=4 * HOUR),
}


def preset_config(name: str) -> FleetConfig:
    """Look up a preset by name.

    >>> preset_config('tiny').num_pods
    1
    """
    if name not in PRESETS:
        raise ConfigurationError(
            f"unknown fleet preset {name!r}; have {sorted(PRESETS)}")
    return PRESETS[name]


def preset_names() -> list[str]:
    """Available preset names, sorted."""
    return sorted(PRESETS)

"""Named fleet scenarios for the CLI, experiments, and tests.

Presets trade fidelity for runtime: `tiny` keeps unit tests fast,
`small` is the CLI/CI smoke scenario, `medium` stresses queueing across
four pods, and `serving` skews the mix toward Section 3.1 serving
residencies to exercise preemption.

Every preset carries the config's placement strategy (first_fit by
default) and the OCS reconfiguration-latency knobs; the CLI's
`--strategy`/`--reconfig-seconds` flags override them per run via
``dataclasses.replace``.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fleet.config import FleetConfig
from repro.units import DAY, HOUR, MINUTE

PRESETS: dict[str, FleetConfig] = {
    # One pod, one simulated day: fast enough for unit tests.
    "tiny": FleetConfig(
        num_pods=1, blocks_per_pod=64,
        horizon_seconds=1 * DAY, arrival_window_seconds=18 * HOUR,
        mean_interarrival_seconds=6 * MINUTE, mean_job_seconds=3 * HOUR,
        max_job_blocks=8, serving_fraction=0.1,
        mean_serving_seconds=12 * HOUR,
        host_mtbf_seconds=60 * DAY, mean_repair_seconds=2 * HOUR),
    # Two pods, two days, heavier jobs: the CI smoke scenario.
    "small": FleetConfig(
        num_pods=2, blocks_per_pod=64,
        horizon_seconds=2 * DAY, arrival_window_seconds=1.5 * DAY,
        mean_interarrival_seconds=7 * MINUTE, mean_job_seconds=6 * HOUR,
        max_job_blocks=16, serving_fraction=0.1,
        host_mtbf_seconds=120 * DAY, mean_repair_seconds=4 * HOUR),
    # Four pods, a simulated week, shapes up to a half pod.
    "medium": FleetConfig(
        num_pods=4, blocks_per_pod=64,
        horizon_seconds=7 * DAY, arrival_window_seconds=6 * DAY,
        mean_interarrival_seconds=7 * MINUTE, mean_job_seconds=10 * HOUR,
        max_job_blocks=32, serving_fraction=0.1,
        host_mtbf_seconds=120 * DAY, mean_repair_seconds=4 * HOUR),
    # Serving-heavy mix: long residencies plus background training.
    "serving": FleetConfig(
        num_pods=2, blocks_per_pod=64,
        horizon_seconds=3 * DAY, arrival_window_seconds=2 * DAY,
        mean_interarrival_seconds=8 * MINUTE, mean_job_seconds=4 * HOUR,
        max_job_blocks=16, serving_fraction=0.4,
        mean_serving_seconds=1 * DAY,
        host_mtbf_seconds=120 * DAY, mean_repair_seconds=4 * HOUR),
}


def preset_config(name: str) -> FleetConfig:
    """Look up a preset by name.

    >>> preset_config('tiny').num_pods
    1
    """
    if name not in PRESETS:
        raise ConfigurationError(
            f"unknown fleet preset {name!r}; have {sorted(PRESETS)}")
    return PRESETS[name]


def preset_names() -> list[str]:
    """Available preset names, sorted."""
    return sorted(PRESETS)

"""Versioned JSONL workload traces: record, load, validate, replay.

A trace freezes every input of one fleet run — the config, the seed,
the job arrivals (shape/type/priority/duration), the block-outage
trace, and any planned deployment drain windows — into a line-oriented
JSON file, so the run can be replayed later, bit for bit, without ever
touching an RNG.  This is how the TPU-generations retrospective
evaluates fleet resilience: against replayed production-shaped load,
not fresh draws.  Scenario work then becomes "ship a trace and a
schedule" instead of "write a generator".

Schema (one JSON object per line):

    {"type": "header", "schema": "repro.fleet.trace", "version": 1,
     "seed": 0, "config": {...FleetConfig fields...}}
    {"type": "job", "job_id": 0, "kind": "train", "model_type": "...",
     "shape": [4, 4, 8], "arrival": 12.5, "work_seconds": 3600.0,
     "priority": 1}
    {"type": "outage", "pod_id": 0, "block_id": 7, "start": 100.0,
     "end": 900.0, "via_spare": false}
    {"type": "drain", "pod_id": 1, "block_id": 3, "start": 86400.0,
     "end": 172800.0}

The header must be the first line and its version must match
:data:`TRACE_VERSION` exactly; jobs must arrive in nondecreasing
arrival order with strictly increasing ids; outages and drains must be
sorted by (start, pod, block) — event insertion order is part of the
determinism contract, so the file order IS the replay order.  Every
record is validated on load (:class:`repro.errors.TraceError` on any
violation), so a malformed or hand-edited trace fails loudly before a
single event fires.  Floats round-trip exactly through JSON (shortest
repr), which is what makes replayed telemetry byte-identical to the
recorded run's.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.slicing import blocks_needed
from repro.errors import ConfigurationError, SchedulingError, TraceError
from repro.fleet.config import FleetConfig
from repro.fleet.failures import BlockOutage, DrainWindow
from repro.fleet.simulator import FleetSimulator
from repro.fleet.workload import FleetJob

#: Bump on any schema change; loaders accept exactly this version.
TRACE_VERSION = 1

#: The header's schema tag — guards against feeding some other JSONL
#: file (a telemetry dump, a bench artifact) to the replayer.
TRACE_SCHEMA = "repro.fleet.trace"

_JOB_KEYS = {"type", "job_id", "kind", "model_type", "shape", "arrival",
             "work_seconds", "priority"}
_OUTAGE_KEYS = {"type", "pod_id", "block_id", "start", "end", "via_spare"}
_DRAIN_KEYS = {"type", "pod_id", "block_id", "start", "end"}
_HEADER_KEYS = {"type", "schema", "version", "seed", "config"}


@dataclass(frozen=True)
class FleetTrace:
    """One recorded fleet run's inputs, ready to save or replay."""

    seed: int
    config: FleetConfig
    jobs: tuple[FleetJob, ...]
    outages: tuple[BlockOutage, ...]
    windows: tuple[DrainWindow, ...] = ()
    version: int = TRACE_VERSION

    @property
    def num_records(self) -> int:
        """Body lines the trace serializes to (header excluded)."""
        return len(self.jobs) + len(self.outages) + len(self.windows)


def trace_of(simulator: FleetSimulator) -> FleetTrace:
    """Freeze a built simulator's inputs into a trace.

    Works on any simulator — synthetic, replayed, or scenario-overlaid
    — because by construction the simulator's `jobs`/`trace`/`windows`
    are exactly the policy-independent inputs a trace must capture.
    """
    return FleetTrace(seed=simulator.seed, config=simulator.config,
                      jobs=tuple(simulator.jobs),
                      outages=tuple(simulator.trace),
                      windows=tuple(simulator.windows))


def record_trace(config: FleetConfig, *, seed: int = 0,
                 windows: Sequence[DrainWindow] = ()) -> FleetTrace:
    """Draw one run's inputs from `config`/`seed` and freeze them."""
    return trace_of(FleetSimulator(config, seed=seed, windows=windows))


# -- serialization ---------------------------------------------------------------


def _config_payload(config: FleetConfig) -> dict[str, Any]:
    return config.to_dict()


def dumps_trace(trace: FleetTrace) -> str:
    """The trace as JSONL text (trailing newline included)."""
    lines = [json.dumps({
        "type": "header", "schema": TRACE_SCHEMA, "version": trace.version,
        "seed": trace.seed, "config": _config_payload(trace.config),
    }, sort_keys=True)]
    for job in trace.jobs:
        lines.append(json.dumps({
            "type": "job", "job_id": job.job_id, "kind": job.kind,
            "model_type": job.model_type, "shape": list(job.shape),
            "arrival": job.arrival, "work_seconds": job.work_seconds,
            "priority": job.priority,
        }, sort_keys=True))
    for outage in trace.outages:
        lines.append(json.dumps({
            "type": "outage", "pod_id": outage.pod_id,
            "block_id": outage.block_id, "start": outage.start,
            "end": outage.end, "via_spare": outage.via_spare,
        }, sort_keys=True))
    for window in trace.windows:
        lines.append(json.dumps({
            "type": "drain", "pod_id": window.pod_id,
            "block_id": window.block_id, "start": window.start,
            "end": window.end,
        }, sort_keys=True))
    return "\n".join(lines) + "\n"


def save_trace(trace: FleetTrace, path: str | Path) -> Path:
    """Write the trace to a JSONL file; returns the path written."""
    target = Path(path)
    target.write_text(dumps_trace(trace))
    return target


# -- parsing + validation --------------------------------------------------------


def _fail(line_no: int, message: str) -> TraceError:
    return TraceError(f"trace line {line_no}: {message}")


def _field(record: dict, key: str, line_no: int) -> Any:
    if key not in record:
        raise _fail(line_no, f"missing required key {key!r}")
    return record[key]


def _int_field(record: dict, key: str, line_no: int, *,
               minimum: int | None = None) -> int:
    value = _field(record, key, line_no)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(line_no, f"{key} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise _fail(line_no, f"{key} must be >= {minimum}, got {value}")
    return value


def _float_field(record: dict, key: str, line_no: int, *,
                 minimum: float | None = None) -> float:
    value = _field(record, key, line_no)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(line_no, f"{key} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise _fail(line_no, f"{key} must be finite, got {value!r}")
    if minimum is not None and value < minimum:
        raise _fail(line_no, f"{key} must be >= {minimum}, got {value}")
    return value


def _check_keys(record: dict, allowed: set[str], line_no: int) -> None:
    unknown = set(record) - allowed
    if unknown:
        raise _fail(line_no, f"unknown keys {sorted(unknown)}; schema "
                             f"version {TRACE_VERSION} allows "
                             f"{sorted(allowed)}")


def _parse_header(record: dict, line_no: int) -> tuple[int, FleetConfig]:
    _check_keys(record, _HEADER_KEYS, line_no)
    schema = _field(record, "schema", line_no)
    if schema != TRACE_SCHEMA:
        raise _fail(line_no, f"not a fleet trace (schema {schema!r}, "
                             f"expected {TRACE_SCHEMA!r})")
    version = _int_field(record, "version", line_no)
    if version != TRACE_VERSION:
        raise _fail(line_no, f"unsupported trace version {version} "
                             f"(this library reads version "
                             f"{TRACE_VERSION})")
    seed = _int_field(record, "seed", line_no, minimum=0)
    payload = _field(record, "config", line_no)
    if not isinstance(payload, dict):
        raise _fail(line_no, "config must be an object")
    try:
        config = FleetConfig.from_dict(payload)
    except TypeError as exc:  # missing config fields
        raise _fail(line_no, f"bad config: {exc}") from exc
    except ConfigurationError as exc:
        raise _fail(line_no, f"invalid config: {exc}") from exc
    return seed, config


def _parse_job(record: dict, config: FleetConfig,
               line_no: int) -> FleetJob:
    _check_keys(record, _JOB_KEYS, line_no)
    kind = _field(record, "kind", line_no)
    if kind not in ("train", "serve"):
        raise _fail(line_no, f"kind must be 'train' or 'serve', "
                             f"got {kind!r}")
    model = _field(record, "model_type", line_no)
    if not isinstance(model, str):
        raise _fail(line_no, f"model_type must be a string, got {model!r}")
    raw_shape = _field(record, "shape", line_no)
    if not (isinstance(raw_shape, list) and len(raw_shape) == 3 and
            all(isinstance(d, int) and not isinstance(d, bool) and d >= 1
                for d in raw_shape)):
        raise _fail(line_no, f"shape must be three positive integers, "
                             f"got {raw_shape!r}")
    shape = tuple(raw_shape)
    try:
        blocks = blocks_needed(shape)
    except SchedulingError as exc:
        raise _fail(line_no, f"illegal slice shape {shape}: {exc}") from exc
    if blocks > config.total_blocks:
        raise _fail(line_no, f"shape {shape} needs {blocks} blocks but "
                             f"the fleet has {config.total_blocks}")
    arrival = _float_field(record, "arrival", line_no, minimum=0.0)
    if arrival > config.horizon_seconds:
        raise _fail(line_no, f"arrival {arrival} is past the horizon "
                             f"{config.horizon_seconds}")
    work = _float_field(record, "work_seconds", line_no)
    if work <= 0:
        raise _fail(line_no, f"work_seconds must be > 0, got {work}")
    return FleetJob(
        job_id=_int_field(record, "job_id", line_no, minimum=0),
        kind=kind, model_type=model, shape=shape, arrival=arrival,
        work_seconds=work,
        priority=_int_field(record, "priority", line_no, minimum=0))


def _parse_block_interval(record: dict, config: FleetConfig,
                          line_no: int) -> tuple[int, int, float, float]:
    pod_id = _int_field(record, "pod_id", line_no, minimum=0)
    if pod_id >= config.num_pods:
        raise _fail(line_no, f"pod_id {pod_id} out of range "
                             f"[0, {config.num_pods})")
    block_id = _int_field(record, "block_id", line_no, minimum=0)
    if block_id >= config.blocks_per_pod:
        raise _fail(line_no, f"block_id {block_id} out of range "
                             f"[0, {config.blocks_per_pod})")
    start = _float_field(record, "start", line_no, minimum=0.0)
    end = _float_field(record, "end", line_no)
    if end <= start:
        raise _fail(line_no, f"end {end} must be after start {start}")
    if end > config.horizon_seconds:
        raise _fail(line_no, f"end {end} is past the horizon "
                             f"{config.horizon_seconds}")
    return pod_id, block_id, start, end


def _parse_outage(record: dict, config: FleetConfig,
                  line_no: int) -> BlockOutage:
    _check_keys(record, _OUTAGE_KEYS, line_no)
    pod_id, block_id, start, end = _parse_block_interval(record, config,
                                                         line_no)
    via_spare = _field(record, "via_spare", line_no)
    if not isinstance(via_spare, bool):
        raise _fail(line_no, f"via_spare must be a boolean, "
                             f"got {via_spare!r}")
    return BlockOutage(pod_id=pod_id, block_id=block_id, start=start,
                       end=end, via_spare=via_spare)


def _parse_drain(record: dict, config: FleetConfig,
                 line_no: int) -> DrainWindow:
    _check_keys(record, _DRAIN_KEYS, line_no)
    pod_id, block_id, start, end = _parse_block_interval(record, config,
                                                         line_no)
    return DrainWindow(pod_id=pod_id, block_id=block_id, start=start,
                       end=end)


def loads_trace(text: str) -> FleetTrace:
    """Parse and validate JSONL trace text into a :class:`FleetTrace`."""
    jobs: list[FleetJob] = []
    outages: list[BlockOutage] = []
    windows: list[DrainWindow] = []
    seed: int | None = None
    config: FleetConfig | None = None
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue  # blank lines tolerated (trailing newline, hand edits)
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise _fail(line_no, f"not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise _fail(line_no, f"expected an object, got "
                                 f"{type(record).__name__}")
        kind = record.get("type")
        if config is None:
            if kind != "header":
                raise _fail(line_no, "first record must be the header")
            seed, config = _parse_header(record, line_no)
            continue
        if kind == "header":
            raise _fail(line_no, "duplicate header")
        if kind == "job":
            jobs.append(_parse_job(record, config, line_no))
        elif kind == "outage":
            outages.append(_parse_outage(record, config, line_no))
        elif kind == "drain":
            windows.append(_parse_drain(record, config, line_no))
        else:
            raise _fail(line_no, f"unknown record type {kind!r}")
    if config is None or seed is None:
        raise TraceError("empty trace: no header record")
    trace = FleetTrace(seed=seed, config=config, jobs=tuple(jobs),
                       outages=tuple(outages), windows=tuple(windows))
    validate_trace(trace)
    return trace


def load_trace(path: str | Path) -> FleetTrace:
    """Load and validate a trace file written by :func:`save_trace`."""
    source = Path(path)
    if not source.exists():
        raise TraceError(f"trace file {source} does not exist")
    return loads_trace(source.read_text())


def validate_trace(trace: FleetTrace) -> None:
    """Cross-record invariants: ordering that the replay relies on.

    Per-record field validation happens at parse time; this checks the
    properties that only hold across records — and is also the entry
    point for hand-built :class:`FleetTrace` objects that never went
    through JSONL.  Event insertion order is part of the determinism
    contract (same-time events fire in schedule order), so ordering is
    a schema requirement, not a style preference.
    """
    if trace.version != TRACE_VERSION:
        raise TraceError(f"unsupported trace version {trace.version}")
    seen_ids: set[int] = set()
    last_arrival = 0.0
    for job in trace.jobs:
        if job.job_id in seen_ids:
            raise TraceError(f"duplicate job_id {job.job_id}")
        seen_ids.add(job.job_id)
        if job.arrival < last_arrival:
            raise TraceError(
                f"job {job.job_id} arrives at {job.arrival}, before the "
                f"previous arrival {last_arrival}; jobs must be sorted "
                f"by arrival")
        last_arrival = job.arrival
    _check_sorted("outage", trace.outages)
    _check_sorted("drain", trace.windows)
    # Overlapping same-block outages would emit interleaved up events
    # that revive a block mid-outage on replay (a block already down
    # cannot fail again); recorded traces never overlap by
    # construction, so a hand-edited one must be rejected here.  Drain
    # windows are exempt: they pass through the overlay's interval
    # union, which coalesces any overlap before events are scheduled.
    last_end: dict[tuple[int, int], float] = {}
    for outage in trace.outages:
        key = (outage.pod_id, outage.block_id)
        if outage.start < last_end.get(key, 0.0):
            raise TraceError(
                f"outages of pod {outage.pod_id} block {outage.block_id} "
                f"overlap: one starts at {outage.start} before the "
                f"previous ends at {last_end[key]}")
        last_end[key] = outage.end


def _check_sorted(label: str,
                  intervals: Iterable[BlockOutage | DrainWindow]) -> None:
    last: tuple[float, int, int] | None = None
    for interval in intervals:
        key = (interval.start, interval.pod_id, interval.block_id)
        if last is not None and key < last:
            raise TraceError(
                f"{label} records must be sorted by (start, pod, block); "
                f"{key} follows {last}")
        last = key

"""Multi-day deployment scenarios: rollout drains over live traffic.

The paper's availability story (Section 2, Figure 4) is about what a
real fleet does over days: hardware is pulled for incremental
deployment (Section 2.4), slices come and go, and the OCS lets the
machine keep scheduling around the holes.  This module composes the
:mod:`repro.core.deployment` rollout model with the fleet's live job
stream: a :class:`DeploymentSchedule` materializes per-block
:class:`~repro.fleet.failures.DrainWindow` entries (a pod pulled for
upgrade, its blocks returning one by one as their hardware is ready —
block ready-dates drawn by :func:`repro.core.deployment.
sample_delivery_days`), and the simulator overlays them onto the
failure trace, charging the capacity loss through the existing
utilization identity.

Schedules are deterministic functions of the config (delivery draws use
a fixed internal seed), and a recorded trace stores the *materialized*
windows — so replaying a scenario trace needs no schedule registry at
all, and editing a schedule never silently changes an old recording.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.deployment import sample_delivery_days
from repro.core.scheduler import PlacementPolicy, PlacementStrategy
from repro.errors import ConfigurationError
from repro.fleet.config import FleetConfig
from repro.fleet.failures import DrainWindow
from repro.fleet.simulator import FleetReport, FleetSimulator
from repro.units import DAY, HOUR

#: Delivery draws inside schedule builders use this fixed seed, offset
#: per pod, so a schedule is a pure function of the config — the run
#: seed stays reserved for workload and failures.
_SCHEDULE_SEED = 0


@dataclass(frozen=True)
class DeploymentSchedule:
    """A named set of planned drain windows for one fleet config."""

    name: str
    windows: tuple[DrainWindow, ...]

    @property
    def pods_touched(self) -> int:
        """Distinct pods the schedule drains."""
        return len({w.pod_id for w in self.windows})

    @property
    def drain_block_seconds(self) -> float:
        """Total planned block-seconds out of service."""
        return sum(w.duration for w in self.windows)


def _sorted_windows(windows: list[DrainWindow]) -> tuple[DrainWindow, ...]:
    return tuple(sorted(windows,
                        key=lambda w: (w.start, w.pod_id, w.block_id)))


def incremental_rollout(config: FleetConfig,
                        pulls: Sequence[tuple[int, float]], *,
                        rollout_days: float = 1.5,
                        straggler_fraction: float = 0.1,
                        straggler_delay_days: float = 0.5,
                        name: str = "rollout") -> DeploymentSchedule:
    """Pods pulled for upgrade, blocks returning on delivery dates.

    Each (pod_id, pull_seconds) pair drains the whole pod at its pull
    time; block `b` returns when its hardware is ready —
    `pull + delivery_days[b]` with ready-dates from
    :func:`sample_delivery_days` scaled so the pod's steady ramp spans
    about `rollout_days` (stragglers run longer, exactly the
    delivery-delay tail the paper calls out).  Windows are clamped to
    the horizon: a straggler block may simply never come back inside
    the run, the harshest form of the §2.4 comparison.
    """
    if rollout_days <= 0:
        raise ConfigurationError("rollout_days must be > 0")
    windows: list[DrainWindow] = []
    for pod_id, pull in pulls:
        if not 0 <= pod_id < config.num_pods:
            raise ConfigurationError(
                f"pod {pod_id} out of range [0, {config.num_pods})")
        if pull < 0:
            raise ConfigurationError("pull time must be >= 0")
        if pull >= config.horizon_seconds:
            continue  # pulled after the run ends; nothing to drain
        ready_days = sample_delivery_days(
            num_blocks=config.blocks_per_pod,
            mean_interval_days=rollout_days / config.blocks_per_pod,
            straggler_fraction=straggler_fraction,
            straggler_delay_days=straggler_delay_days,
            seed=_SCHEDULE_SEED + pod_id)
        for block_id, ready in enumerate(ready_days):
            end = min(pull + float(ready) * DAY, config.horizon_seconds)
            if end > pull:
                windows.append(DrainWindow(pod_id=pod_id,
                                           block_id=block_id,
                                           start=pull, end=end))
    return DeploymentSchedule(name=name, windows=_sorted_windows(windows))


def rolling_maintenance(config: FleetConfig, *,
                        drain_seconds: float = 2 * HOUR,
                        span_fraction: float = 0.8,
                        name: str = "maintenance") -> DeploymentSchedule:
    """One maintenance wave marching over every block of the fleet.

    Block `k` (in machine-wide id order) is drained for
    `drain_seconds`, with starts staggered evenly so the wave covers
    `span_fraction` of the horizon — the steady background churn of a
    production fleet, never a correlated capacity cliff.
    """
    if drain_seconds <= 0:
        raise ConfigurationError("drain_seconds must be > 0")
    if not 0 < span_fraction <= 1:
        raise ConfigurationError("span_fraction must be in (0, 1]")
    total = config.total_blocks
    stagger = span_fraction * config.horizon_seconds / total
    windows: list[DrainWindow] = []
    for index in range(total):
        pod_id, block_id = divmod(index, config.blocks_per_pod)
        start = index * stagger
        end = min(start + drain_seconds, config.horizon_seconds)
        if end > start:
            windows.append(DrainWindow(pod_id=pod_id, block_id=block_id,
                                       start=start, end=end))
    return DeploymentSchedule(name=name, windows=_sorted_windows(windows))


# -- named schedules (config/preset/CLI wiring) ----------------------------------


def _deploy_week(config: FleetConfig) -> DeploymentSchedule:
    """Staggered pod upgrades across a multi-day run.

    The highest-id pod is pulled 1/7 into the horizon and (fleets of
    2+ pods) the next one at 3/7, each returning incrementally over
    ~1.5/7 of the horizon — on the 7-day `deploy_week` preset that is
    literally days 1 and 3 with 1.5-day rollouts, and on shorter
    configs the same shape compresses instead of falling off the end.
    Live traffic overlaps two rolling capacity holes, the shape of an
    in-place fleet upgrade week.
    """
    horizon_days = config.horizon_seconds / DAY
    pulls = [(config.num_pods - 1, config.horizon_seconds / 7)]
    if config.num_pods >= 2:
        pulls.append((config.num_pods - 2,
                      3 * config.horizon_seconds / 7))
    return incremental_rollout(config, pulls,
                               rollout_days=1.5 * horizon_days / 7,
                               straggler_delay_days=0.5 * horizon_days / 7,
                               name="deploy_week")


def _rolling_maintenance(config: FleetConfig) -> DeploymentSchedule:
    return rolling_maintenance(config)


SCHEDULES: dict[str, Callable[[FleetConfig], DeploymentSchedule]] = {
    "deploy_week": _deploy_week,
    "maintenance": _rolling_maintenance,
}


def schedule_names() -> list[str]:
    """Registered deployment-schedule names, sorted."""
    return sorted(SCHEDULES)


def schedule_for(name: str, config: FleetConfig) -> DeploymentSchedule:
    """Materialize a named schedule against one config."""
    if name not in SCHEDULES:
        raise ConfigurationError(
            f"unknown deployment schedule {name!r}; have "
            f"{schedule_names()}")
    return SCHEDULES[name](config)


# -- scenario runners ------------------------------------------------------------


def run_scenario(config: FleetConfig, schedule: DeploymentSchedule, *,
                 seed: int = 0,
                 policy: PlacementPolicy = PlacementPolicy.OCS,
                 strategy: PlacementStrategy | None = None) -> FleetReport:
    """One run with the schedule's drains overlaid on live traffic."""
    simulator = FleetSimulator(config, seed=seed, windows=schedule.windows)
    return simulator.run(policy, strategy)


def compare_deployment(config: FleetConfig, *,
                       schedule: DeploymentSchedule | None = None,
                       seed: int = 0,
                       strategy: PlacementStrategy | None = None
                       ) -> dict[str, FleetReport]:
    """OCS vs static under the same drain schedule, identical inputs.

    The deployment-scenario A/B: both policies lose exactly the same
    planned capacity (windows merge into the shared outage overlay),
    so the gap is pure reconfigure-around-drain — the OCS packs slices
    into whatever blocks remain; static wiring fragments around the
    holes.  `schedule=None` materializes the config's own
    `deploy_schedule` (falling back to `deploy_week`).
    """
    if schedule is None:
        schedule = schedule_for(config.deploy_schedule or "deploy_week",
                                config)
    simulator = FleetSimulator(config, seed=seed, windows=schedule.windows)
    return {
        "ocs": simulator.run(PlacementPolicy.OCS, strategy),
        "static": simulator.run(PlacementPolicy.STATIC, strategy),
    }

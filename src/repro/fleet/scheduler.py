"""The fleet-level scheduler: queueing, priorities, and preemption.

Wraps :class:`repro.core.scheduler.SliceScheduler` placement (Section
2.5's OCS-vs-static packing rules) with the operational layer a real
fleet needs: a shared priority queue across pods, backfill past stuck
heads, serving-tier preemption of batch work, and checkpoint-restart
bookkeeping (Young/Daly cadence from :mod:`repro.core.checkpoint`)
whenever a failure or preemption interrupts a training job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.block import HOSTS_PER_BLOCK
from repro.core.checkpoint import CheckpointParams, optimal_interval
from repro.core.scheduler import PlacementPolicy, SliceScheduler
from repro.errors import SchedulingError
from repro.fleet.cluster import FleetState, Pod
from repro.fleet.config import FleetConfig
from repro.fleet.telemetry import FleetTelemetry
from repro.fleet.workload import FleetJob
from repro.sim.events import AnyEvent, Simulator

_EPSILON = 1e-9


@dataclass
class ActiveJob:
    """Mutable runtime state of one job inside the scheduler."""

    job: FleetJob
    remaining: float
    submitted_at: float
    pending_restore: float = 0.0
    pod_id: int | None = None
    blocks: list[int] = field(default_factory=list)
    started_at: float = 0.0
    interval: float = math.inf   # checkpoint cadence; inf for serving
    overhead: float = 1.0        # wall-clock per useful second
    completion: AnyEvent = None

    @property
    def running(self) -> bool:
        """True while the job holds blocks."""
        return self.pod_id is not None


class FleetScheduler:
    """Places a shared job queue onto the fleet under one policy."""

    def __init__(self, config: FleetConfig, policy: PlacementPolicy,
                 sim: Simulator, state: FleetState,
                 telemetry: FleetTelemetry) -> None:
        self.config = config
        self.policy = policy
        self.sim = sim
        self.state = state
        self.telemetry = telemetry
        self.queue: list[ActiveJob] = []
        self.running: dict[int, ActiveJob] = {}

    # -- queue discipline --------------------------------------------------------

    def _queue_order(self, active: ActiveJob) -> tuple:
        return (-active.job.priority, active.submitted_at, active.job.job_id)

    def submit(self, job: FleetJob) -> None:
        """Accept a new arrival and try to run it."""
        self.telemetry.record_for(job)
        self.queue.append(ActiveJob(job=job, remaining=job.work_seconds,
                                    submitted_at=self.sim.now))
        self.dispatch()

    def dispatch(self) -> None:
        """Run placement passes until nothing else fits (with backfill).

        One pass considers every queued job, so a second pass can only
        help when an eviction happened — it requeues the victims and may
        leave victim blocks the preemptor's placement did not consume.
        """
        while self._dispatch_pass():
            pass

    def _dispatch_pass(self) -> bool:
        """One placement sweep; returns True when a re-pass could help."""
        evicted_any = False
        # Within a pass, free space only shrinks and (because the queue
        # is priority-sorted) no preemptible job starts before a
        # preemptor is considered — so both a failed placement and a
        # failed preemption attempt stay failed for identical later
        # requests, until an eviction actually frees blocks.
        failed_shapes: set = set()
        failed_preemptions: set = set()
        for active in sorted(self.queue, key=self._queue_order):
            shape = active.job.shape
            can_preempt = active.job.priority >= self.config.preempt_priority
            placement = None
            if shape not in failed_shapes:
                placement = self._find_anywhere(active.job)
                if placement is None:
                    failed_shapes.add(shape)
            if placement is None and can_preempt:
                key = (shape, active.job.priority)
                if key not in failed_preemptions:
                    placement = self._preempt_for(active)
                    if placement is not None:  # eviction freed blocks
                        evicted_any = True
                        failed_shapes.clear()
                        failed_preemptions.clear()
                    else:
                        failed_preemptions.add(key)
            if placement is None:
                continue  # backfill: later (smaller) jobs may still fit
            pod, blocks = placement
            self._start(active, pod, blocks)
        return evicted_any

    def _find_anywhere(self, job: FleetJob) -> tuple[Pod, list[int]] | None:
        for pod in self.state.pods_by_space():
            blocks = pod.find_placement(job.shape, self.policy)
            if blocks is not None:
                return pod, blocks
        return None

    # -- preemption ---------------------------------------------------------------

    def _preempt_for(self, active: ActiveJob
                     ) -> tuple[Pod, list[int]] | None:
        """Evict lower-priority work to make room, if that can succeed.

        Victims are considered hypothetically first — lowest priority,
        then least progress lost (most recently started) — and evicted
        only once a victim set that actually yields a placement is
        found, and then only the victims whose blocks that placement
        uses, so neither static-fragmentation dead ends nor bystanders
        in the considered set suffer pointless churn.
        """
        for pod in self.state.pods_by_space():
            victims = sorted(
                (self.running[job_id] for job_id in pod.jobs_on()
                 if self.running[job_id].job.priority < active.job.priority),
                key=lambda a: (a.job.priority, -a.started_at, a.job.job_id))
            if not victims:
                continue
            mask = pod.free_mask()
            considered: list[ActiveJob] = []
            for victim in victims:
                for block, owner in pod.owner.items():
                    if owner == victim.job.job_id:
                        mask[block] = True
                considered.append(victim)
                blocks = SliceScheduler(mask).place_one(active.job.shape,
                                                        self.policy)
                if blocks is None:
                    continue
                needed = set(blocks)
                for candidate in considered:
                    held = {b for b, owner in pod.owner.items()
                            if owner == candidate.job.job_id}
                    if held & needed:
                        self._interrupt(candidate, preempted=True)
                return pod, blocks
        return None

    # -- job lifecycle -----------------------------------------------------------

    def _start(self, active: ActiveJob, pod: Pod,
               blocks: list[int]) -> None:
        job = active.job
        pod.assign(blocks, job.job_id)
        self.queue.remove(active)
        self.running[job.job_id] = active
        active.pod_id = pod.pod_id
        active.blocks = list(blocks)
        active.started_at = self.sim.now

        record = self.telemetry.record_for(job)
        record.queue_waits.append(self.sim.now - active.submitted_at)
        if record.first_start is None:
            record.first_start = self.sim.now

        if not job.is_serving:
            active.interval = optimal_interval(CheckpointParams(
                num_hosts=job.blocks * HOSTS_PER_BLOCK,
                host_mtbf_seconds=self.config.host_mtbf_seconds,
                checkpoint_seconds=self.config.checkpoint_seconds,
                restore_seconds=self.config.restore_seconds))
            active.overhead = 1.0 + \
                self.config.checkpoint_seconds / active.interval
        wall = active.pending_restore + active.remaining * active.overhead
        active.completion = self.sim.schedule(
            wall, lambda a=active: self._complete(a))

    def _segment_progress(self, active: ActiveJob,
                          elapsed: float) -> tuple[float, float, float]:
        """Split an elapsed run segment into (restore, run_wall, progressed).

        The single source of the accounting identity every segment path
        relies on: elapsed = restore + run_wall, and progressed useful
        work is run_wall discounted by the checkpoint-write overhead.
        """
        restore = min(elapsed, active.pending_restore)
        run_wall = elapsed - restore
        return restore, run_wall, run_wall / active.overhead

    def _complete(self, active: ActiveJob) -> None:
        job = active.job
        elapsed = self.sim.now - active.started_at
        restore, run_wall, _ = self._segment_progress(active, elapsed)
        useful = active.remaining
        writes = max(0.0, run_wall - useful)
        self._account_segment(active, elapsed, restore, useful, 0.0, writes)
        self._release(active)
        active.remaining = 0.0
        self.telemetry.record_for(job).completed_at = self.sim.now
        self.dispatch()

    def _interrupt(self, active: ActiveJob, *, preempted: bool) -> None:
        """Stop a running job (failure or eviction) and requeue it."""
        job = active.job
        if not active.running:
            raise SchedulingError(f"job {job.job_id} is not running")
        if active.completion is not None:
            active.completion.cancel()
            active.completion = None
        elapsed = self.sim.now - active.started_at
        restore, run_wall, progressed = self._segment_progress(active,
                                                               elapsed)
        if job.is_serving:
            # Stateless forward-only residency: elapsed time counts.
            saved, replay = progressed, 0.0
        else:
            saved = math.floor(progressed / active.interval) * active.interval
            replay = progressed - saved
        writes = max(0.0, run_wall - progressed)
        self._account_segment(active, elapsed, restore, saved, replay,
                              writes)
        self._release(active)
        active.remaining = max(0.0, active.remaining - saved)

        record = self.telemetry.record_for(job)
        if preempted:
            record.preemptions += 1
        else:
            record.interruptions += 1
        if active.remaining <= _EPSILON:
            record.completed_at = self.sim.now
            return
        active.pending_restore = self.config.restore_seconds
        active.submitted_at = self.sim.now
        self.queue.append(active)

    def _release(self, active: ActiveJob) -> None:
        pod = self.state.pods[active.pod_id]
        pod.release(active.job.job_id)
        del self.running[active.job.job_id]
        active.pod_id = None
        active.blocks = []

    def _account_segment(self, active: ActiveJob, elapsed: float,
                         restore: float, useful: float, replay: float,
                         writes: float) -> None:
        blocks = active.job.blocks
        self.telemetry.record_for(active.job).useful_seconds += useful
        self.telemetry.busy_block_seconds += elapsed * blocks
        self.telemetry.useful_block_seconds += useful * blocks
        self.telemetry.restore_block_seconds += restore * blocks
        self.telemetry.replay_block_seconds += replay * blocks
        self.telemetry.checkpoint_block_seconds += writes * blocks

    # -- failure hooks -----------------------------------------------------------

    def on_block_down(self, pod_id: int, block_id: int) -> None:
        """A block failed; interrupt whatever job holds it."""
        pod = self.state.pods[pod_id]
        victim = pod.block_down(block_id)
        self.telemetry.block_failures += 1
        if victim is not None:
            self._interrupt(self.running[victim], preempted=False)
        self.dispatch()

    def on_block_up(self, pod_id: int, block_id: int) -> None:
        """A block came back; queued work may now fit."""
        self.state.pods[pod_id].block_up(block_id)
        self.dispatch()

    # -- end of run --------------------------------------------------------------

    def finalize(self, horizon: float) -> None:
        """Credit in-flight work at the horizon without penalizing it.

        Running jobs get their progressed (not just checkpointed) work
        counted as useful — the run is ongoing, nothing is lost — which
        treats both placement policies identically.
        """
        for active in list(self.running.values()):
            elapsed = horizon - active.started_at
            restore, run_wall, progressed = self._segment_progress(active,
                                                                   elapsed)
            progressed = min(active.remaining, progressed)
            writes = max(0.0, run_wall - progressed)
            self._account_segment(active, elapsed, restore, progressed,
                                  0.0, writes)

"""The fleet-level scheduler: queueing, priorities, preemption, rewiring.

Wraps :class:`repro.core.scheduler.SliceScheduler` placement (Section
2.5's OCS-vs-static packing rules) with the operational layer a real
fleet needs: a shared priority queue across pods, backfill past stuck
heads, serving-tier preemption of batch work, and checkpoint-restart
bookkeeping (Young/Daly cadence from :mod:`repro.core.checkpoint`)
whenever a failure or preemption interrupts a training job.

Placement is machine-wide: a job whose block demand exceeds one pod can
be placed as a *cross-pod slice* over the machine-level trunk OCS layer
(:mod:`repro.fleet.machine`), with per-pod block assignments planned by
:func:`repro.core.scheduler.plan_multi_region` under the live trunk-port
budget.  Cross-pod slices pay for the privilege twice: the rewiring
additionally programs the trunk bank (extra critical-path latency), and
every link that leaves the pod taxes the job's step time — the
trunk-hop bandwidth tax, charged as a slowdown proportional to the
placement's cross-link share.

Contention resolution is machine-wide too.  Each dispatch escalates
free placement → defrag → cross-pod → preemption (the last resort): a
preemptor too big for any one pod assembles a cross-pod placement out
of hypothetical victim credits (blocks per pod, plus the trunk ports a
cross-pod victim would hand back) and evicts only the victims the
winning plan needs; and when a cross-pod plan fails on trunk ports
rather than blocks, the defrag strategy checkpoint-migrates cross-pod
donors into snugger placements that release trunk endpoints.

OCS placement is flexible but not free: starting a slice rewires the
optical fabric, and that switching latency is charged on the job's
critical path before its first segment runs.  The placement *strategy*
picks among feasible placements — first-fit, best-fit (minimal
fragmentation on one pod; minimal pod spill and trunk usage across
pods), or defrag, which plans an OCS rewiring that compacts free blocks
(migrating small jobs off one pod, across pods when needed) when a job
would otherwise queue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.block import HOSTS_PER_BLOCK
from repro.core.checkpoint import CheckpointParams, optimal_interval
from repro.core.scheduler import (MultiRegionPlacement, PlacementPolicy,
                                  PlacementStrategy, SliceScheduler,
                                  plan_multi_region,
                                  plan_multi_region_hypothetical)
from repro.errors import SchedulingError
from repro.fleet.cluster import FleetState, Pod
from repro.fleet.config import FleetConfig
from repro.fleet.obs.tracer import NULL_RECORDER, NullRecorder, ObsRecorder
from repro.fleet.telemetry import FleetTelemetry
from repro.fleet.workload import FleetJob
from repro.sim.events import AnyEvent, Simulator

_EPSILON = 1e-9

#: One placement: (pod, physical blocks) per pod, in virtual slot order.
Placement = list[tuple[Pod, list[int]]]


@dataclass(slots=True, eq=False)
class ActiveJob:
    """Mutable runtime state of one job inside the scheduler.

    Slotted: the dispatch loop reads these fields for every queued job
    on every pass, and a hyperscale run keeps thousands alive at once.
    Identity equality (`eq=False`): each job has exactly one ActiveJob,
    and `queue.remove` must not pay a field-by-field dataclass compare
    against every queued entry it scans past.
    """

    job: FleetJob
    remaining: float
    submitted_at: float
    pending_restore: float = 0.0
    pending_reconfig: float = 0.0
    #: (pod id, blocks) per pod in slot order; empty while queued.
    assignments: list[tuple[int, list[int]]] = field(default_factory=list)
    started_at: float = 0.0
    interval: float = math.inf   # checkpoint cadence; inf for serving
    overhead: float = 1.0        # wall-clock per useful second
    trunk_tax: float = 0.0       # extra wall per useful second, cross-pod
    trunk_ports_held: int = 0    # trunk endpoints held across all pods
    completion: AnyEvent = None

    @property
    def running(self) -> bool:
        """True while the job holds blocks."""
        return bool(self.assignments)

    @property
    def is_cross_pod(self) -> bool:
        """True while the job's slice spans more than one pod."""
        return len(self.assignments) > 1

    @property
    def pod_id(self) -> int | None:
        """The hosting pod of a single-pod placement; None otherwise."""
        if len(self.assignments) == 1:
            return self.assignments[0][0]
        return None

    @property
    def blocks(self) -> list[int]:
        """Every block the job holds, across all pods, in slot order."""
        return [block for _, pod_blocks in self.assignments
                for block in pod_blocks]

    def blocks_on(self, pod_id: int) -> int:
        """Blocks the job holds on one pod."""
        return sum(len(pod_blocks)
                   for held_pod, pod_blocks in self.assignments
                   if held_pod == pod_id)


class FleetScheduler:
    """Places a shared job queue onto the fleet under one policy."""

    #: Dispatches between full from-scratch invariant rescans.  Every
    #: dispatch still runs the O(pods) conservation probe, so
    #: single-sided index updates fail immediately; only positional
    #: drift that happens to conserve per-pod counts waits for the
    #: cadenced rescan (and the one at finalize).
    FULL_CHECK_EVERY = 64

    def __init__(self, config: FleetConfig, policy: PlacementPolicy,
                 sim: Simulator, state: FleetState,
                 telemetry: FleetTelemetry,
                 strategy: PlacementStrategy | None = None,
                 obs: ObsRecorder | NullRecorder = NULL_RECORDER) -> None:
        self.config = config
        self.policy = policy
        self.strategy = strategy if strategy is not None else config.strategy
        self.sim = sim
        self.state = state
        self.telemetry = telemetry
        #: Observability sink; the shared no-op recorder unless the run
        #: asked for a log.  Cold-path hooks call it unconditionally;
        #: the dispatch loop's decision log gates on `obs.enabled`.
        self.obs = obs
        self.queue: list[ActiveJob] = []
        self.running: dict[int, ActiveJob] = {}
        #: Guard the incremental indices after every dispatch.  Defaults
        #: to the interpreter's debug mode (python -O compiles the guard
        #: out for production-speed sweeps); tests force it on
        #: explicitly so the drift guard itself is testable regardless
        #: of interpreter flags.  Every dispatch runs the O(pods)
        #: conservation probe; the full from-scratch rescan runs every
        #: FULL_CHECK_EVERY dispatches and once more at finalize, so
        #: positional drift the probe cannot see is still caught within
        #: a bounded window.
        self.verify_invariants = __debug__
        self._dispatches_since_full_check = 0
        #: Failure caches persisted across dispatch passes.  A failed
        #: placement attempt mutates nothing, so its result stays valid
        #: while capacity only *shrinks* (assignments, victimless block
        #: failures).  `_grow_epoch` counts every capacity-growing
        #: mutation — block releases and repairs — and the caches are
        #: flushed whenever it (or the machine's trunk-release counter)
        #: moved since they were filled.  With observability enabled the
        #: caches reset every pass so the decision log's
        #: `failure_cache_hit` classification keeps its per-pass meaning.
        self._grow_epoch = 0
        self._cache_epoch = -1
        self._cache_trunk_epoch = -1
        self._failed_shapes: set = set()
        self._failed_defrags: set[int] = set()
        self._failed_cross: set = set()
        self._failed_preemptions: set = set()
        #: Young/Daly interval per block count — a pure function of the
        #: config's failure/checkpoint constants and the job's size,
        #: recomputed thousands of times for the handful of sizes a
        #: workload actually uses.
        self._interval_by_blocks: dict[int, float] = {}

    # -- queue discipline --------------------------------------------------------

    def _queue_order(self, active: ActiveJob) -> tuple:
        return (-active.job.priority, active.submitted_at, active.job.job_id)

    def _enqueue(self, job: FleetJob) -> ActiveJob:
        """Register an arrival on the queue (no dispatch)."""
        self.telemetry.record_for(job)
        active = ActiveJob(job=job, remaining=job.work_seconds,
                          submitted_at=self.sim.now)
        self.queue.append(active)
        return active

    def _queue_in_order(self) -> list[ActiveJob]:
        """The queue in dispatch order (priority, then age, then id)."""
        return sorted(self.queue, key=self._queue_order)

    def submit(self, job: FleetJob) -> None:
        """Accept a new arrival and try to run it."""
        self._enqueue(job)
        self.dispatch()

    def dispatch(self) -> None:
        """Run placement passes until nothing else fits (with backfill).

        One pass considers every queued job, so a second pass can only
        help when blocks moved underneath it — an eviction requeued
        victims, or a defragmentation migrated jobs between pods.
        """
        while self._dispatch_pass():
            pass
        self._post_dispatch_checks()

    def _post_dispatch_checks(self) -> None:
        """The per-dispatch drift guard (probe + cadenced full rescan)."""
        if self.verify_invariants:
            self._dispatches_since_full_check += 1
            if self._dispatches_since_full_check >= self.FULL_CHECK_EVERY:
                self._dispatches_since_full_check = 0
                self.state.check_invariants()
            else:
                self.state.check_conservation()

    def _dispatch_pass(self, candidates: list[ActiveJob] | None = None
                       ) -> bool:
        """One placement sweep; returns True when a re-pass could help.

        `candidates` restricts the sweep to a subset of the queue (in
        dispatch order); the fast tier uses it for arrivals-only passes
        where every older queued job's failure rungs are known cached.
        Strict dispatch always sweeps the whole queue.
        """
        if not self.queue:
            return False
        moved_any = False
        # Hoisted out of the per-job loop: this sweep visits every
        # queued job on every pass (tens of thousands of iterations on
        # the medium preset), so the disabled path must not pay even
        # the attribute lookups.
        obs_enabled = self.obs.enabled
        # Within a pass, free space only shrinks and (because the queue
        # is priority-sorted) no preemptible job starts before a
        # preemptor is considered — so a failed placement, defrag,
        # cross-pod, or preemption attempt stays failed for identical
        # later requests, until an eviction or migration moves blocks.
        # The same monotonicity holds *across* passes and dispatches
        # while only shrinking mutations occurred, so the caches persist
        # until the grow epoch (or the trunk ledger) moves.
        machine = self.state.machine
        trunk_epoch = machine.trunk_release_count \
            if machine is not None else 0
        if obs_enabled or self._cache_epoch != self._grow_epoch or \
                self._cache_trunk_epoch != trunk_epoch:
            self._failed_shapes.clear()
            self._failed_defrags.clear()
            self._failed_cross.clear()
            self._failed_preemptions.clear()
        epoch_at_start = self._grow_epoch
        failed_shapes = self._failed_shapes
        failed_defrags = self._failed_defrags
        failed_cross = self._failed_cross
        failed_preemptions = self._failed_preemptions
        # ...except for the trunk layer: preemption and trunk-freeing
        # defragmentation can hand trunk ports back mid-pass, so any
        # release observed on the machine fabric invalidates the caches
        # whose entries depend on the trunk budget.  (The block-freeing
        # paths below clear every cache at their success sites; this
        # watcher catches releases on any path that does not.)

        def refresh_trunk_caches() -> None:
            nonlocal trunk_epoch
            if machine is not None and \
                    machine.trunk_release_count != trunk_epoch:
                trunk_epoch = machine.trunk_release_count
                failed_cross.clear()
                failed_preemptions.clear()

        if candidates is None:
            candidates = self._queue_in_order()
        for active in candidates:
            shape = active.job.shape
            can_preempt = active.job.priority >= self.config.preempt_priority
            placement = None
            via = ""        # the rung that placed it, for the decision log
            attempted = False  # did ANY rung run, or were all cache-skipped
            if shape not in failed_shapes:
                attempted = True
                placement = self._find_anywhere(active.job)
                if placement is None:
                    failed_shapes.add(shape)
                else:
                    via = "pod_local"
            if placement is None and \
                    self.strategy is PlacementStrategy.DEFRAG and \
                    active.job.blocks not in failed_defrags:
                attempted = True
                placement = self._defrag_for(active)
                if placement is not None:  # migrations moved blocks
                    via = "defrag"
                    moved_any = True
                    failed_shapes.clear()
                    failed_defrags.clear()
                    failed_cross.clear()
                    failed_preemptions.clear()
                else:
                    failed_defrags.add(active.job.blocks)
            # Any contention path — this job's defrag attempt just now,
            # or an earlier iteration's — may have released trunk ports
            # without reaching the blanket clears above; the
            # trunk-dependent caches are stale the moment that happens.
            refresh_trunk_caches()
            if placement is None and shape not in failed_cross:
                attempted = True
                placement = self._find_cross_pod(active.job)
                if placement is None:
                    failed_cross.add(shape)
                else:
                    via = "cross_pod"
            if placement is None and can_preempt:
                key = (shape, active.job.priority)
                if key not in failed_preemptions:
                    attempted = True
                    placement = self._preempt_for(active)
                    if placement is not None:  # eviction freed blocks
                        via = "preemption"
                        moved_any = True
                        failed_shapes.clear()
                        failed_defrags.clear()
                        failed_cross.clear()
                        failed_preemptions.clear()
                    else:
                        failed_preemptions.add(key)
            if obs_enabled:
                self.obs.decision(
                    self.sim.now, active.job.job_id, active.job.kind,
                    active.job.blocks, active.job.priority,
                    "placed" if placement is not None else "rejected",
                    via if placement is not None else
                    self._rejection_cause(active, attempted, can_preempt))
            if placement is None:
                continue  # backfill: later (smaller) jobs may still fit
            self._start(active, placement)
        # Stamp the caches as valid only when the pass saw no grow
        # event at all.  A mid-pass release on a *failed* contention
        # path (a defrag that evicted but still returned None) leaves
        # `failed_shapes`/`failed_defrags` stale — the original
        # per-pass caches bounded that staleness to one pass, so the
        # persistent caches must not carry it any further.  The trunk
        # stamp is the last value the watcher reconciled the caches
        # against, not the machine's current count, for the same
        # reason.
        if self._grow_epoch == epoch_at_start:
            self._cache_epoch = epoch_at_start
            self._cache_trunk_epoch = trunk_epoch
        return moved_any

    def _rejection_cause(self, active: ActiveJob, attempted: bool,
                         can_preempt: bool) -> str:
        """Classify one failed placement attempt for the decision log.

        Only called with observability enabled, so the extra
        unbounded-trunk probe below never runs on the default path.
        Precedence: a fully cache-skipped attempt is a `failure_cache_hit`
        (nothing was even tried this iteration); a preemption-capable
        job's last resort was eviction, so its failure is `preemption_
        declined`; otherwise the job wanted free capacity, and the
        shortage is trunk ports exactly when a cross-pod plan succeeds
        with the trunk budget lifted (`trunk_budget=None` = unbounded)
        but failed under the live budget.
        """
        if not attempted:
            return "failure_cache_hit"
        if can_preempt:
            return "preemption_declined"
        machine = self.state.machine
        needed = active.job.blocks
        if machine is not None and self.config.cross_pod and \
                self.policy is PlacementPolicy.OCS and \
                len(self.state.pods) >= 2 and \
                needed > self.state.pods[0].num_blocks and \
                self.state.total_free >= needed and \
                plan_multi_region(active.job.shape,
                                  self.state.free_by_pod(),
                                  self.strategy) is not None:
            return "insufficient_trunk_ports"
        return "insufficient_blocks"

    def _find_anywhere(self, job: FleetJob) -> Placement | None:
        """A free single-pod placement under the configured strategy.

        first_fit scans pods in id order; best_fit and defrag take the
        feasible pod with the least free space left over, preserving
        large free pools for large arrivals.  Under OCS any free blocks
        of a pod are equivalent, so pod choice IS the strategy; under
        static wiring the strategy also picks the cuboid inside the pod.
        """
        needed = job.blocks
        if self.strategy is PlacementStrategy.FIRST_FIT:
            candidates = self.state.pods
        else:
            candidates = sorted(
                (p for p in self.state.pods if p.num_free >= needed),
                key=lambda p: (p.num_free, p.pod_id))
        for pod in candidates:
            if pod.num_free < needed:
                continue
            if self.policy is PlacementPolicy.OCS:
                return [(pod, pod.first_free(needed))]
            blocks = pod.find_placement(job.shape, self.policy,
                                        self.strategy)
            if blocks is not None:
                return [(pod, blocks)]
        return None

    # -- cross-pod placement ------------------------------------------------------

    def _find_cross_pod(self, job: FleetJob) -> Placement | None:
        """A cross-pod placement over the trunk layer, or None.

        Only jobs whose block demand exceeds one pod span pods — the
        paper's machine exists for exactly those slices — and only on an
        OCS machine with cross-pod placement enabled: a statically-wired
        fleet has no trunk layer to ride.  The per-pod split comes from
        :func:`plan_multi_region` under the live trunk-port budget, so a
        placement that would oversubscribe any pod's trunks is never
        attempted.
        """
        machine = self.state.machine
        if machine is None or not self.config.cross_pod or \
                self.policy is not PlacementPolicy.OCS or \
                len(self.state.pods) < 2:
            return None
        needed = job.blocks
        if needed <= self.state.pods[0].num_blocks:
            return None  # fits one pod in principle; spill never pays
        if self.state.total_free < needed:
            return None
        placement = plan_multi_region(
            job.shape, self.state.free_by_pod(), self.strategy,
            trunk_budget=machine.trunk_budget())
        if placement is None:
            return None
        return self._materialize(placement)

    # -- preemption ---------------------------------------------------------------

    def _preempt_for(self, active: ActiveJob) -> Placement | None:
        """Evict lower-priority work to make room, if that can succeed.

        Victims are considered hypothetically first — lowest priority,
        then least progress lost (most recently started) — and evicted
        only once a victim set that actually yields a placement is
        found, and then only the victims that placement actually needs,
        so neither static-fragmentation dead ends nor bystanders in the
        considered set suffer pointless churn.  A cross-pod victim
        loses its whole slice (its other pods' blocks free as a side
        effect), which only helps later queue entries.

        A job too big for any one pod takes the machine-wide path
        instead: its placement is assembled across pods out of
        hypothetical victim credits (blocks per pod, plus the trunk
        ports a cross-pod victim would hand back) under the trunk
        budget, via :func:`plan_multi_region_hypothetical`.
        """
        if active.job.blocks > self.state.pods[0].num_blocks:
            return self._preempt_cross_pod(active)
        for pod in self.state.pods_by_space():
            victims = sorted(
                (self.running[job_id] for job_id in pod.jobs_on()
                 if self.running[job_id].job.priority < active.job.priority),
                key=lambda a: (a.job.priority, -a.started_at, a.job.job_id))
            if not victims:
                continue
            mask = pod.free_mask()
            considered: list[ActiveJob] = []
            for victim in victims:
                for block, owner in pod.owner.items():
                    if owner == victim.job.job_id:
                        mask[block] = True
                considered.append(victim)
                blocks = SliceScheduler(mask).place_one(
                    active.job.shape, self.policy, self.strategy)
                if blocks is None:
                    continue
                needed = set(blocks)
                for candidate in considered:
                    held = {b for b, owner in pod.owner.items()
                            if owner == candidate.job.job_id}
                    if held & needed:
                        self._interrupt(candidate, preempted=True)
                return [(pod, blocks)]
        return None

    def _preempt_cross_pod(self, active: ActiveJob) -> Placement | None:
        """Assemble a cross-pod placement out of evictions, or None.

        The machine-wide contention path: a job that must span pods
        cannot be rescued by any single pod's victims, so candidates
        are ranked fleet-wide (lowest priority, then least progress
        lost) and accumulated into hypothetical per-pod free masks and
        a hypothetical trunk budget — a cross-pod victim is credited
        with the trunk ports it would release — until a victim set
        yields a :class:`MultiRegionPlacement`.  The set is then pruned
        to the victims the winning plan actually needs (necessity is
        monotone: dropping one victim's credits never makes another
        droppable), and only those are evicted.
        """
        machine = self.state.machine
        if machine is None or not self.config.cross_pod or \
                not self.config.cross_pod_preemption or \
                self.policy is not PlacementPolicy.OCS or \
                len(self.state.pods) < 2:
            return None
        victims = sorted(
            (candidate for candidate in self.running.values()
             if candidate.job.priority < active.job.priority),
            key=lambda a: (a.job.priority, -a.started_at, a.job.job_id))
        if not victims:
            return None
        free = self.state.free_by_pod()

        def plan_with(considered: list[ActiveJob]
                      ) -> MultiRegionPlacement | None:
            block_credits: dict[int, int] = {}
            for victim in considered:
                for pod_id, blocks in victim.assignments:
                    block_credits[pod_id] = \
                        block_credits.get(pod_id, 0) + len(blocks)
            return plan_multi_region_hypothetical(
                active.job.shape, free, self.strategy,
                trunk_budget=machine.trunk_budget_excluding(
                    victim.job.job_id for victim in considered),
                block_credits=block_credits)

        considered: list[ActiveJob] = []
        plan: MultiRegionPlacement | None = None
        for victim in victims:
            considered.append(victim)
            plan = plan_with(considered)
            if plan is not None:
                break
        if plan is None:
            return None
        survivors = list(considered)
        for victim in considered:
            trimmed = [v for v in survivors if v is not victim]
            replanned = plan_with(trimmed)
            if replanned is not None:
                survivors, plan = trimmed, replanned
        for victim in survivors:
            self.telemetry.cross_pod_preemptions += 1
            self.telemetry.trunk_ports_reclaimed += \
                victim.trunk_ports_held
            self._interrupt(victim, preempted=True)
        return self._materialize(plan)

    def _materialize(self, plan: MultiRegionPlacement) -> Placement:
        """Resolve a multi-region plan's counts to physical blocks."""
        placement: Placement = []
        for pod_id, take in plan.region_blocks:
            blocks = self.state.pods[pod_id].first_free(take)
            if blocks is None:  # pragma: no cover - plan guarantees fit
                raise SchedulingError(
                    f"pod {pod_id} cannot supply {take} planned blocks")
            placement.append((self.state.pods[pod_id], blocks))
        return placement

    # -- defragmentation ----------------------------------------------------------

    def _defrag_for(self, active: ActiveJob) -> Placement | None:
        """Compact free blocks onto one pod by migrating donors off it.

        The defrag strategy's OCS move: when a job would otherwise
        queue although the fleet holds enough free blocks in aggregate,
        pick the pod closest to fitting it, checkpoint-migrate small
        jobs from that pod onto the rest of the fleet (each migration
        is an OCS rewiring — the donor pays restore plus the new
        fabric's switching latency), and place the stuck job on the
        compacted pod.  Migrations run only when the whole plan is
        known to succeed, so no job moves for nothing.  Static machines
        cannot rewire, so under static wiring defrag places exactly
        like best_fit.
        """
        if self.policy is not PlacementPolicy.OCS or \
                self.config.defrag_max_moves == 0:
            return None
        needed = active.job.blocks
        if self.state.total_free < needed:
            return None  # compaction cannot conjure capacity
        if needed > self.state.pods[0].num_blocks:
            # No single pod can ever host this job; the only defrag
            # that helps is freeing the *trunk layer* it must ride.
            return self._defrag_trunks_for(active)
        for pod in sorted(self.state.pods,
                          key=lambda p: (needed - p.num_free, p.pod_id)):
            if needed > pod.num_blocks:
                continue  # no compaction fits this job on one pod
            deficit = needed - pod.num_free
            if deficit <= 0:
                continue  # _find_anywhere would have used it
            moves = self._plan_moves(pod, deficit)
            if moves is None:
                continue
            for donor, dest in moves:
                self._migrate(donor, dest)
            blocks = pod.first_free(needed)
            if blocks is None:  # pragma: no cover - plan guarantees fit
                raise SchedulingError("defrag plan failed to free the pod")
            return [(pod, blocks)]
        return None

    def _defrag_trunks_for(self, active: ActiveJob) -> Placement | None:
        """Free trunk ports by re-packing cross-pod donors, or None.

        The defrag strategy's machine-wide move, symmetric to block
        compaction: the stuck job must span pods, the fleet holds
        enough free blocks, but the cross-pod plan fails on the *trunk
        budget* — the ports are held by running cross-pod slices.
        Donors (cross-pod, below the preemption band, biggest trunk
        holders first) are hypothetically lifted off the machine until
        the stuck job plans, then checkpoint-migrated into the
        snuggest placements that fit *around* the stuck job's
        reservation — minimal pod spill, then minimal trunk usage
        (single-pod is the limit case, every trunk endpoint released
        via :meth:`MachineFabric.release`).  Bounded by
        `defrag_max_moves`, and committed only once the whole move set
        is known to succeed — no job moves for nothing.
        """
        machine = self.state.machine
        if machine is None or not self.config.cross_pod or \
                not self.config.cross_pod_preemption or \
                len(self.state.pods) < 2:
            return None
        shape = active.job.shape
        free = self.state.free_by_pod()
        budget = machine.trunk_budget()
        plan = plan_multi_region(shape, free, self.strategy,
                                 trunk_budget=budget)
        if plan is not None:
            # Feasible as-is: no migration needed.  Report failure so
            # the cross-pod rung right after this one places it — a
            # defrag "success" here would set moved_any and wipe every
            # failure cache for a placement that moved nothing.
            return None
        if plan_multi_region(shape, free, self.strategy) is None:
            return None  # blocks are the shortage; moves conserve blocks
        donors = sorted(
            (candidate for candidate in self.running.values()
             if candidate.is_cross_pod and candidate.job.priority <
             self.config.preempt_priority),
            key=lambda a: (-a.trunk_ports_held, a.job.job_id))
        hypo_free = dict(free)
        lifted: list[ActiveJob] = []
        relocations: list[tuple[ActiveJob, MultiRegionPlacement]] = []
        plan = None
        for donor in donors:
            if len(lifted) == self.config.defrag_max_moves:
                break
            lifted.append(donor)
            for pod_id, blocks in donor.assignments:
                hypo_free[pod_id] += len(blocks)
            hypo_budget = machine.trunk_budget_excluding(
                mover.job.job_id for mover in lifted)
            plan = plan_multi_region(shape, list(hypo_free.items()),
                                     self.strategy,
                                     trunk_budget=hypo_budget)
            if plan is None:
                continue  # lift another donor
            # Reserve the stuck job's claim, then re-place every lifted
            # donor in what remains; all-or-nothing.
            rest_free = dict(hypo_free)
            rest_budget = dict(hypo_budget)
            for pod_id, take in plan.region_blocks:
                rest_free[pod_id] -= take
            for pod_id, ports in plan.trunk_ports_by_region().items():
                rest_budget[pod_id] -= ports
            relocations = []
            for mover in lifted:
                new_place = plan_multi_region(
                    mover.job.shape, list(rest_free.items()),
                    PlacementStrategy.BEST_FIT,
                    trunk_budget=rest_budget)
                if new_place is None:
                    break
                for pod_id, take in new_place.region_blocks:
                    rest_free[pod_id] -= take
                for pod_id, ports in \
                        new_place.trunk_ports_by_region().items():
                    rest_budget[pod_id] -= ports
                relocations.append((mover, new_place))
            if len(relocations) == len(lifted):
                break
            plan = None
        if plan is None:
            return None  # no move set frees enough trunk ports
        # Commit in two phases: checkpoint-halt EVERY donor first, so
        # all their blocks and trunk ports release together, then
        # restart each on its planned relocation.  Interleaving (halt
        # one, restart it, halt the next) could land one donor's
        # relocation on blocks a later donor still holds — the
        # relocations were planned against pools where all lifted
        # donors have vacated.
        pending: list[tuple[ActiveJob, MultiRegionPlacement, int]] = []
        for donor, new_place in relocations:
            held_before = donor.trunk_ports_held
            if self._halt_for_migration(donor):
                pending.append((donor, new_place, held_before))
            else:
                # The planned checkpoint completed the donor outright:
                # every endpoint it held came back.
                self.telemetry.trunk_ports_reclaimed += held_before
        for donor, new_place, held_before in pending:
            self.telemetry.trunk_freeing_migrations += 1
            self._restart_migrated(donor, self._materialize(new_place))
            # Net ports handed back: the donor's old endpoints minus
            # whatever its re-packed slice still holds.
            self.telemetry.trunk_ports_reclaimed += \
                max(0, held_before - donor.trunk_ports_held)
        # Re-plan against the live state rather than trusting the
        # hypothesis: a planned checkpoint that covers a donor's whole
        # remaining work completes it instead of moving it, freeing
        # strictly more than planned — never less.
        plan = plan_multi_region(shape, self.state.free_by_pod(),
                                 self.strategy,
                                 trunk_budget=machine.trunk_budget())
        if plan is None:  # pragma: no cover - moves guarantee feasibility
            raise SchedulingError(
                "trunk defrag failed to free the trunk layer")
        return self._materialize(plan)

    def _plan_moves(self, pod: Pod, deficit: int
                    ) -> list[tuple[ActiveJob, Pod]] | None:
        """Donors on `pod` (and destinations) freeing >= `deficit` blocks.

        Serving deployments never migrate (they are the user-facing
        tier).  A donor frees only the blocks it holds *on this pod* —
        a cross-pod donor's slice is released everywhere, but its other
        pods' blocks do not help the deficit here, so the plan counts
        per-pod holdings.  A single donor covering the whole deficit is
        preferred (smallest such donor, least wasted churn); otherwise
        donors accumulate largest-first so the fewest jobs pay
        migration cost.
        """
        donors = sorted(
            (self.running[job_id] for job_id in pod.jobs_on()
             if self.running[job_id].job.priority <
             self.config.preempt_priority),
            key=lambda a: (a.blocks_on(pod.pod_id), a.job.job_id))
        for donor in donors:  # smallest single donor that covers it
            if donor.blocks_on(pod.pod_id) < deficit:
                continue
            dest = self._migration_target(donor, pod, {})
            if dest is not None:
                return [(donor, dest)]
        reserved: dict[int, int] = {}
        moves: list[tuple[ActiveJob, Pod]] = []
        freed = 0
        for donor in sorted(donors,
                            key=lambda a: (-a.blocks_on(pod.pod_id),
                                           a.job.job_id)):
            if freed >= deficit or \
                    len(moves) == self.config.defrag_max_moves:
                break
            dest = self._migration_target(donor, pod, reserved)
            if dest is None:
                continue
            reserved[dest.pod_id] = reserved.get(dest.pod_id, 0) + \
                donor.job.blocks
            moves.append((donor, dest))
            freed += donor.blocks_on(pod.pod_id)
        return moves if freed >= deficit else None

    def _migration_target(self, donor: ActiveJob, source: Pod,
                          reserved: dict[int, int]) -> Pod | None:
        """Best-fit destination pod for a migrating donor, or None.

        The donor resettles as a single-pod slice (even if it ran
        cross-pod before), so the destination needs room for its whole
        demand.
        """
        needed = donor.job.blocks
        best: Pod | None = None
        best_left = -1
        for pod in self.state.pods:
            if pod.pod_id == source.pod_id:
                continue
            left = pod.num_free - reserved.get(pod.pod_id, 0) - needed
            if left < 0:
                continue
            if best is None or left < best_left:
                best, best_left = pod, left
        return best

    def _halt_for_migration(self, active: ActiveJob) -> bool:
        """Checkpoint-halt a donor for a planned move; its blocks and
        trunk ports release here.  Returns False when the checkpoint
        covered everything left — the donor completed outright and
        there is nothing to move (even better than moving)."""
        if self.policy is not PlacementPolicy.OCS:
            # Migration destinations are picked by flat block count and
            # materialized with first_free — valid only because OCS
            # makes any free blocks of a pod equivalent.  A statically
            # wired machine cannot rewire a running job at all (its
            # defrag degrades to best_fit before ever reaching here),
            # so landing here under static wiring is a scheduler bug,
            # not a placement failure.
            raise SchedulingError(
                f"job {active.job.job_id}: defrag migration is an OCS "
                f"rewiring; a statically-wired machine cannot relocate "
                f"a running job")
        self._halt_segment(active, planned=True)
        if active.remaining <= _EPSILON:
            self.telemetry.record_for(active.job).completed_at = \
                self.sim.now
            self.obs.instant("completed", self.sim.now,
                             job_id=active.job.job_id,
                             kind=active.job.kind,
                             blocks=active.job.blocks)
            return False
        return True

    def _restart_migrated(self, active: ActiveJob,
                          placement: Placement) -> None:
        """Restart a halted donor on its new placement (restore paid)."""
        self.telemetry.record_for(active.job).migrations += 1
        self.obs.instant("migrated", self.sim.now,
                         job_id=active.job.job_id, kind=active.job.kind,
                         blocks=active.job.blocks)
        active.pending_restore = self.config.restore_seconds
        self._start(active, placement, migration=True)

    def _migrate(self, active: ActiveJob, dest: Pod) -> None:
        """Planned checkpoint-migrate-restore onto one destination pod.

        The block-compaction defrag move.  The physical blocks are
        resolved only after the donor's own blocks are released, so a
        donor may resettle partly onto blocks it just vacated.  (The
        trunk-freeing defrag drives :meth:`_halt_for_migration` /
        :meth:`_restart_migrated` directly: with several donors in one
        plan, every halt must happen before any restart.)
        """
        if not self._halt_for_migration(active):
            return
        blocks = dest.first_free(active.job.blocks)
        if blocks is None:  # pragma: no cover - reservation fits
            raise SchedulingError(
                f"migration target pod {dest.pod_id} has no room")
        self._restart_migrated(active, [(dest, blocks)])

    # -- job lifecycle -----------------------------------------------------------

    def _start(self, active: ActiveJob, placement: Placement,
               migration: bool = False) -> None:
        job = active.job
        for pod, blocks in placement:
            pod.assign(blocks, job.job_id)
        if not migration:
            self.queue.remove(active)
        self.running[job.job_id] = active
        active.assignments = [(pod.pod_id, list(blocks))
                              for pod, blocks in placement]
        active.started_at = self.sim.now
        active.pending_reconfig = self._rewire(active)

        record = self.telemetry.record_for(job)
        if active.is_cross_pod:
            record.cross_pod_placements += 1
        if not migration:
            record.queue_waits.append(self.sim.now - active.submitted_at)
            self.obs.span("queued", job.job_id, active.submitted_at,
                          self.sim.now, kind=job.kind, blocks=job.blocks)
        if record.first_start is None:
            record.first_start = self.sim.now

        if not job.is_serving:
            interval = self._interval_by_blocks.get(job.blocks)
            if interval is None:
                interval = optimal_interval(CheckpointParams(
                    num_hosts=job.blocks * HOSTS_PER_BLOCK,
                    host_mtbf_seconds=self.config.host_mtbf_seconds,
                    checkpoint_seconds=self.config.checkpoint_seconds,
                    restore_seconds=self.config.restore_seconds))
                self._interval_by_blocks[job.blocks] = interval
            active.interval = interval
            active.overhead = 1.0 + \
                self.config.checkpoint_seconds / active.interval
        wall = active.pending_reconfig + active.pending_restore + \
            active.remaining * active.overhead * (1.0 + active.trunk_tax)
        self._schedule_completion(active, wall)

    def _schedule_completion(self, active: ActiveJob, wall: float) -> None:
        """Arm the completion event `wall` seconds out (overridable)."""
        active.completion = self.sim.schedule(
            wall, lambda a=active: self._complete(a))

    def _rewire(self, active: ActiveJob) -> float:
        """Program the machine fabric for a placement; critical-path cost.

        Static machines (no fabric) and sub-block slices (electrical
        mesh only) need no rewiring and start instantly.  Cross-pod
        placements additionally program the trunk bank and set the
        segment's trunk-hop bandwidth tax, scaled by the share of the
        slice's links that leave their pod.
        """
        active.trunk_tax = 0.0
        active.trunk_ports_held = 0
        machine = self.state.machine
        if machine is None:
            return 0.0
        job = active.job
        plan = machine.plan(job.job_id, job.shape, active.assignments)
        if plan.empty:
            return 0.0
        machine.apply(plan)
        self.telemetry.ocs_reconfigurations += 1
        self.telemetry.circuits_programmed += plan.num_circuits
        if plan.cross_pod:
            self.telemetry.trunk_circuits_programmed += \
                plan.num_trunk_circuits
            active.trunk_tax = self.config.trunk_bandwidth_tax * \
                plan.cross_fraction
            active.trunk_ports_held = plan.total_trunk_ports
            self.obs.instant("trunk_reconfig", self.sim.now,
                             job_id=job.job_id, kind=job.kind,
                             blocks=job.blocks,
                             trunk_ports=plan.total_trunk_ports)
        return plan.latency_seconds(self.config.reconfig_base_seconds,
                                    self.config.ocs_switch_seconds,
                                    self.config.trunk_reconfig_seconds)

    def _segment_progress(self, active: ActiveJob, elapsed: float
                          ) -> tuple[float, float, float, float]:
        """Split an elapsed segment into (reconfig, restore, run_wall,
        progressed).

        The single source of the accounting identity every segment path
        relies on: elapsed = reconfig + restore + run_wall — the fabric
        rewires, then the checkpoint restores, then the job runs — and
        progressed useful work is run_wall discounted by the
        checkpoint-write overhead and, on a cross-pod slice, by the
        trunk-hop bandwidth tax.
        """
        reconfig = min(elapsed, active.pending_reconfig)
        restore = min(elapsed - reconfig, active.pending_restore)
        run_wall = elapsed - reconfig - restore
        progressed = run_wall / (active.overhead * (1.0 + active.trunk_tax))
        return reconfig, restore, run_wall, progressed

    def _complete(self, active: ActiveJob) -> None:
        self._finish(active)
        self.dispatch()

    def _finish(self, active: ActiveJob) -> None:
        """Retire a job whose completion event fired (no dispatch)."""
        job = active.job
        elapsed = self.sim.now - active.started_at
        reconfig, restore, run_wall, _ = self._segment_progress(active,
                                                                elapsed)
        useful = active.remaining
        stall = useful * active.overhead * active.trunk_tax
        writes = max(0.0, run_wall - useful - stall)
        self._account_segment(active, elapsed, reconfig, restore, useful,
                              0.0, writes, stall)
        self._release(active)
        active.remaining = 0.0
        self.telemetry.record_for(job).completed_at = self.sim.now
        self.obs.instant("completed", self.sim.now, job_id=job.job_id,
                         kind=job.kind, blocks=job.blocks)

    def _halt_segment(self, active: ActiveJob, *, planned: bool) -> None:
        """Stop a running job's segment, account it, and free its blocks.

        `planned` (migration) checkpoints right here — nothing replays;
        an unplanned stop rolls training back to the last Young/Daly
        checkpoint boundary.  Serving is stateless either way.
        """
        job = active.job
        if not active.running:
            raise SchedulingError(f"job {job.job_id} is not running")
        if active.completion is not None:
            active.completion.cancel()
            active.completion = None
        elapsed = self.sim.now - active.started_at
        reconfig, restore, run_wall, progressed = \
            self._segment_progress(active, elapsed)
        if job.is_serving or planned:
            saved, replay = progressed, 0.0
        else:
            saved = math.floor(progressed / active.interval) * active.interval
            replay = progressed - saved
        stall = progressed * active.overhead * active.trunk_tax
        writes = max(0.0, run_wall - progressed - stall)
        self._account_segment(active, elapsed, reconfig, restore, saved,
                              replay, writes, stall)
        self._release(active)
        active.remaining = max(0.0, active.remaining - saved)
        active.pending_reconfig = 0.0  # a restart replans the fabric

    def _interrupt(self, active: ActiveJob, *, preempted: bool) -> None:
        """Stop a running job (failure or eviction) and requeue it."""
        job = active.job
        self._halt_segment(active, planned=False)
        record = self.telemetry.record_for(job)
        if preempted:
            record.preemptions += 1
        else:
            record.interruptions += 1
        self.obs.instant("preempted" if preempted else "interrupted",
                         self.sim.now, job_id=job.job_id, kind=job.kind,
                         blocks=job.blocks)
        if active.remaining <= _EPSILON:
            record.completed_at = self.sim.now
            self.obs.instant("completed", self.sim.now,
                             job_id=job.job_id, kind=job.kind,
                             blocks=job.blocks)
            return
        active.pending_restore = self.config.restore_seconds
        active.submitted_at = self.sim.now
        self.queue.append(active)

    def cancel(self, active: ActiveJob) -> None:
        """Retire a job on request (the serving tier's scale-down path).

        A running job halts as a *planned* stop — the segment banks
        with nothing replayed (serving replicas are stateless anyway)
        and its blocks free immediately; a queued job simply leaves the
        queue.  Either way the record closes at `now` so chip-second
        accounting ends with the pool's decision, not the horizon.
        No dispatch here: callers batch their cancels and dispatch
        once.
        """
        job = active.job
        if active.running:
            self._halt_segment(active, planned=True)
        elif active in self.queue:
            self.queue.remove(active)
        active.remaining = 0.0
        self.telemetry.record_for(job).completed_at = self.sim.now
        self.obs.instant("cancelled", self.sim.now, job_id=job.job_id,
                         kind=job.kind, blocks=job.blocks)

    def _release(self, active: ActiveJob) -> None:
        self._grow_epoch += 1  # freed blocks can unstick cached failures
        for pod_id, blocks in active.assignments:
            self.state.pods[pod_id].release(active.job.job_id, blocks)
        if self.state.machine is not None:
            self.state.machine.release(active.job.job_id)
        if active.trunk_ports_held:
            self.telemetry.trunk_port_seconds += active.trunk_ports_held * \
                (self.sim.now - active.started_at)
        del self.running[active.job.job_id]
        active.assignments = []
        active.trunk_tax = 0.0
        active.trunk_ports_held = 0

    def _account_segment(self, active: ActiveJob, elapsed: float,
                         reconfig: float, restore: float, useful: float,
                         replay: float, writes: float,
                         stall: float = 0.0) -> None:
        """Bank one segment into the identity's buckets.

        Trunk stall is busy time the slice spends on trunk-hop links:
        part of the job's step time, so it rides inside the goodput
        bucket (keeping utilization = goodput + replay + restore +
        checkpoint + reconfig exact) while being surfaced separately —
        and excluded from the job's own useful-progress credit.
        """
        blocks = active.job.blocks
        if self.obs.enabled:
            # Span boundaries ARE the accounting boundaries: the
            # segment's elapsed wall partitions into reconfig, then
            # restore, then run_wall, and the running span's args carry
            # the identity's split of run_wall (useful + replay +
            # checkpoint writes + trunk stall) — so exported spans
            # reconcile exactly with the telemetry buckets.
            job = active.job
            t0 = active.started_at
            if reconfig > 0:
                self.obs.span("reconfig", job.job_id, t0, t0 + reconfig,
                              kind=job.kind, blocks=blocks)
            if restore > 0:
                self.obs.span("restore", job.job_id, t0 + reconfig,
                              t0 + reconfig + restore,
                              kind=job.kind, blocks=blocks)
            run_wall = elapsed - reconfig - restore
            if run_wall > 0:
                self.obs.span("running", job.job_id,
                              t0 + reconfig + restore, t0 + elapsed,
                              kind=job.kind, blocks=blocks,
                              useful=useful, replay=replay,
                              checkpoint=writes, trunk_stall=stall)
        record = self.telemetry.record_for(active.job)
        record.useful_seconds += useful
        record.busy_seconds += elapsed
        record.trunk_stall_seconds += stall
        self.telemetry.busy_block_seconds += elapsed * blocks
        self.telemetry.useful_block_seconds += (useful + stall) * blocks
        self.telemetry.trunk_stall_block_seconds += stall * blocks
        self.telemetry.reconfig_block_seconds += reconfig * blocks
        self.telemetry.restore_block_seconds += restore * blocks
        self.telemetry.replay_block_seconds += replay * blocks
        self.telemetry.checkpoint_block_seconds += writes * blocks
        if active.is_cross_pod:
            self.telemetry.cross_pod_block_seconds += elapsed * blocks

    # -- failure hooks -----------------------------------------------------------

    def _apply_block_down(self, pod_id: int, block_id: int) -> None:
        """Record a block failure and interrupt its holder (no dispatch)."""
        pod = self.state.pods[pod_id]
        victim = pod.block_down(block_id)
        self.telemetry.block_failures += 1
        self.obs.instant("block_down", self.sim.now, pod_id=pod_id,
                         block_id=block_id)
        if victim is not None:
            self._interrupt(self.running[victim], preempted=False)

    def _apply_block_up(self, pod_id: int, block_id: int) -> None:
        """Record a block repair (no dispatch)."""
        self._grow_epoch += 1  # repaired capacity can unstick failures
        self.state.pods[pod_id].block_up(block_id)
        self.obs.instant("block_up", self.sim.now, pod_id=pod_id,
                         block_id=block_id)

    def on_block_down(self, pod_id: int, block_id: int) -> None:
        """A block failed; interrupt whatever job holds it."""
        self._apply_block_down(pod_id, block_id)
        self.dispatch()

    def on_block_up(self, pod_id: int, block_id: int) -> None:
        """A block came back; queued work may now fit."""
        self._apply_block_up(pod_id, block_id)
        self.dispatch()

    # -- end of run --------------------------------------------------------------

    def finalize(self, horizon: float) -> None:
        """Credit in-flight work at the horizon without penalizing it.

        Running jobs get their progressed (not just checkpointed) work
        counted as useful — the run is ongoing, nothing is lost — which
        treats both placement policies identically.  Trunk ports held
        by running cross-pod slices are charged to the horizon.
        """
        for active in list(self.running.values()):
            elapsed = horizon - active.started_at
            reconfig, restore, run_wall, progressed = \
                self._segment_progress(active, elapsed)
            progressed = min(active.remaining, progressed)
            stall = progressed * active.overhead * active.trunk_tax
            writes = max(0.0, run_wall - progressed - stall)
            self._account_segment(active, elapsed, reconfig, restore,
                                  progressed, 0.0, writes, stall)
            if active.trunk_ports_held:
                self.telemetry.trunk_port_seconds += \
                    active.trunk_ports_held * (horizon - active.started_at)
        # End-of-run backstop for the cadenced rescan: whatever drift
        # the per-dispatch probe could not see fails the run here
        # rather than surviving into the report.
        if self.verify_invariants:
            self.state.check_invariants()

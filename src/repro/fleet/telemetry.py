"""Per-job and fleet-wide telemetry for fleet runs.

Goodput follows the paper's definition — the fraction of the machine's
block-time doing useful work — split from plain utilization (block-time
merely occupied) by the failure taxes: replayed work since the last
checkpoint, restore time, checkpoint writes, and (new with per-pod
fabric state) OCS reconfiguration latency spent rewiring a slice's
optical links before it can run.  The identity

    utilization = goodput + replay + restore + checkpoint + reconfig

is the load-bearing contract every accounting path preserves.

Machine-wide placement adds the trunk dimension: block-time on
cross-pod slices (`cross_pod_fraction`), trunk-port occupancy
(`trunk_utilization`), and the trunk-hop bandwidth tax.  The tax is
time a cross-pod slice spends waiting on trunk-hop links rather than
computing; it is part of the job's step time — the machine is busy
running the job, just on a worse topology — so it stays inside goodput,
with its size surfaced separately as `trunk_stall_fraction` (a subset
of goodput, not a sixth identity term).

The summary must stay well-formed JSON for any run, including an empty
one (zero jobs, zero horizon): every ratio is guarded so no NaN or
division-by-zero ever reaches the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Version of the flat summary dict's key set.  Emitted into every
#: summary as `schema_version` and asserted by the bench-regression
#: gate, so a summary-shape change that forgets to re-record baselines
#: fails loudly instead of silently comparing mismatched shapes.  Bump
#: when keys are added, removed, or change meaning.
SUMMARY_SCHEMA = 1


@dataclass(slots=True)
class JobRecord:
    """Lifetime telemetry of one job.

    Slotted: a large-fleet run materializes one record per job and the
    accounting hot path touches several fields per segment, so dropping
    the per-instance ``__dict__`` saves memory and a dict hop per
    access.
    """

    job_id: int
    kind: str
    priority: int
    blocks: int
    arrival: float
    work_seconds: float
    first_start: float | None = None
    completed_at: float | None = None
    useful_seconds: float = 0.0
    busy_seconds: float = 0.0
    trunk_stall_seconds: float = 0.0
    queue_waits: list[float] = field(default_factory=list)
    interruptions: int = 0
    preemptions: int = 0
    migrations: int = 0
    cross_pod_placements: int = 0

    @property
    def completed(self) -> bool:
        """True once the job finished all its work."""
        return self.completed_at is not None

    @property
    def first_wait(self) -> float | None:
        """Queue wait before the job first ran."""
        return self.queue_waits[0] if self.queue_waits else None


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty list."""
    return float(np.percentile(values, fraction * 100,
                               method="inverted_cdf"))


def _fraction(numerator: float, denominator: float) -> float:
    """A guarded ratio: zero (not NaN/inf) when the denominator is zero."""
    return numerator / denominator if denominator > 0 else 0.0


@dataclass(slots=True)
class FleetTelemetry:
    """Aggregate accounting over one fleet run."""

    records: dict[int, JobRecord] = field(default_factory=dict)
    busy_block_seconds: float = 0.0
    useful_block_seconds: float = 0.0
    replay_block_seconds: float = 0.0
    restore_block_seconds: float = 0.0
    checkpoint_block_seconds: float = 0.0
    reconfig_block_seconds: float = 0.0
    cross_pod_block_seconds: float = 0.0
    trunk_stall_block_seconds: float = 0.0
    trunk_port_seconds: float = 0.0
    block_failures: int = 0
    spare_port_repairs: int = 0
    ocs_reconfigurations: int = 0
    circuits_programmed: int = 0
    trunk_circuits_programmed: int = 0
    #: Contention-resolution counters (machine-wide paths): victims
    #: evicted so a job bigger than one pod could span pods, donors
    #: checkpoint-migrated off the trunk layer to free its ports, and
    #: the trunk ports those two paths handed back to the budget.
    cross_pod_preemptions: int = 0
    trunk_freeing_migrations: int = 0
    trunk_ports_reclaimed: int = 0

    @property
    def preemption_events(self) -> int:
        """Total preemptions across jobs."""
        # detlint: ignore[D005] integer counters; order-free sum
        return sum(r.preemptions for r in self.records.values())

    @property
    def defrag_migrations(self) -> int:
        """Total defrag migrations, rolled up from per-job records."""
        # detlint: ignore[D005] integer counters; order-free sum
        return sum(r.migrations for r in self.records.values())

    @property
    def cross_pod_placements(self) -> int:
        """Total cross-pod slice starts, rolled up from per-job records."""
        # detlint: ignore[D005] integer counters; order-free sum
        return sum(r.cross_pod_placements for r in self.records.values())

    def record_for(self, job) -> JobRecord:
        """Get or create the record of a :class:`FleetJob`."""
        if job.job_id not in self.records:
            self.records[job.job_id] = JobRecord(
                job_id=job.job_id, kind=job.kind, priority=job.priority,
                blocks=job.blocks, arrival=job.arrival,
                work_seconds=job.work_seconds)
        return self.records[job.job_id]

    def absorb_segments(self, columns: np.ndarray) -> None:
        """Bank many buffered segments at once (the fast tier's path).

        `columns` is a float64 matrix with one row per segment:
        ``(job_id, blocks, elapsed, reconfig, restore, useful, replay,
        writes, stall, cross)`` — exactly the arguments the strict
        tier's per-segment accounting takes, so each bucket's bulk sum
        is the dot product of its column with the blocks column.
        Per-job useful/stall credit scatters back through ``add.at``.
        Equivalent to replaying the segments one by one up to float
        summation order.
        """
        if len(columns) == 0:
            return
        job_ids = columns[:, 0].astype(np.int64)
        blocks = columns[:, 1]
        elapsed, reconfig, restore, useful, replay, writes, stall, \
            cross = (columns[:, i] for i in range(2, 10))
        self.busy_block_seconds += float(elapsed @ blocks)
        self.useful_block_seconds += float((useful + stall) @ blocks)
        self.trunk_stall_block_seconds += float(stall @ blocks)
        self.reconfig_block_seconds += float(reconfig @ blocks)
        self.restore_block_seconds += float(restore @ blocks)
        self.replay_block_seconds += float(replay @ blocks)
        self.checkpoint_block_seconds += float(writes @ blocks)
        self.cross_pod_block_seconds += float((elapsed * cross) @ blocks)
        size = int(job_ids.max()) + 1
        useful_by_job = np.zeros(size)
        busy_by_job = np.zeros(size)
        stall_by_job = np.zeros(size)
        np.add.at(useful_by_job, job_ids, useful)
        np.add.at(busy_by_job, job_ids, elapsed)
        np.add.at(stall_by_job, job_ids, stall)
        for job_id in np.unique(job_ids).tolist():
            record = self.records[job_id]
            record.useful_seconds += float(useful_by_job[job_id])
            record.busy_seconds += float(busy_by_job[job_id])
            record.trunk_stall_seconds += float(stall_by_job[job_id])

    def summary(self, *, total_blocks: int, horizon_seconds: float,
                trunk_ports_total: int = 0) -> dict[str, float]:
        """Fleet-wide headline metrics as a flat, stable-keyed dict."""
        capacity = total_blocks * horizon_seconds
        records = list(self.records.values())
        # Every wait counts: first submissions AND requeues after
        # failures/preemptions, so policy-induced re-placement pain
        # (the static machine's weakness) shows up in the comparison.
        waits = [w for r in records for w in r.queue_waits]
        completed = [r for r in records if r.completed]
        never_ran = [r for r in records if r.first_start is None]
        out: dict[str, float] = {
            "schema_version": float(SUMMARY_SCHEMA),
            "jobs_submitted": float(len(records)),
            "jobs_completed": float(len(completed)),
            "jobs_unfinished": float(len(records) - len(completed)),
            "jobs_never_ran": float(len(never_ran)),
            "job_interruptions": float(
                sum(r.interruptions for r in records)),
            "job_preemptions": float(
                sum(r.preemptions for r in records)),
            "job_migrations": float(
                sum(r.migrations for r in records)),
            "job_cross_pod_placements": float(self.cross_pod_placements),
            "block_failures": float(self.block_failures),
            "spare_port_repairs": float(self.spare_port_repairs),
            "ocs_reconfigurations": float(self.ocs_reconfigurations),
            "circuits_programmed": float(self.circuits_programmed),
            "trunk_circuits_programmed": float(
                self.trunk_circuits_programmed),
            "cross_pod_preemptions": float(self.cross_pod_preemptions),
            "trunk_freeing_migrations": float(
                self.trunk_freeing_migrations),
            "trunk_ports_reclaimed": float(self.trunk_ports_reclaimed),
            "utilization": _fraction(self.busy_block_seconds, capacity),
            "goodput": _fraction(self.useful_block_seconds, capacity),
            "replay_fraction": _fraction(self.replay_block_seconds,
                                         capacity),
            "restore_fraction": _fraction(self.restore_block_seconds,
                                          capacity),
            "checkpoint_fraction": _fraction(self.checkpoint_block_seconds,
                                             capacity),
            "reconfig_fraction": _fraction(self.reconfig_block_seconds,
                                           capacity),
            "cross_pod_fraction": _fraction(self.cross_pod_block_seconds,
                                            self.busy_block_seconds),
            "trunk_stall_fraction": _fraction(
                self.trunk_stall_block_seconds, capacity),
            "trunk_utilization": _fraction(
                self.trunk_port_seconds,
                trunk_ports_total * horizon_seconds),
        }
        if waits:
            out["mean_queue_wait"] = sum(waits) / len(waits)
            out["median_queue_wait"] = _percentile(waits, 0.50)
            out["p95_queue_wait"] = _percentile(waits, 0.95)
            out["p99_queue_wait"] = _percentile(waits, 0.99)
            out["max_queue_wait"] = max(waits)
        else:
            out["mean_queue_wait"] = 0.0
            out["median_queue_wait"] = 0.0
            out["p95_queue_wait"] = 0.0
            out["p99_queue_wait"] = 0.0
            out["max_queue_wait"] = 0.0
        return out

"""Multi-seed fleet sweeps fanned across worker processes.

One fleet run answers "what happened on seed 0"; the paper-style
claims (OCS goodput advantage, queue-wait distributions) are properties
of the *seed ensemble*.  :func:`run_sweep` runs the same config under
one policy for many seeds, one process per core by default — each run
is an independent, fully deterministic simulation, so the sweep is
embarrassingly parallel and its output is reproducible regardless of
worker count or completion order: results are keyed and sorted by
seed, and each seed's summary is byte-identical to a single
`FleetSimulator(config, seed=s).run(policy)` in-process.

The worker entry point is a module-level function taking only
picklable arguments (a frozen :class:`~repro.fleet.config.FleetConfig`
and primitives), so the pool works under any multiprocessing start
method.  Deployment-drain windows are derived *inside* the worker from
the config's own `deploy_schedule` — exactly as the CLI derives them —
so presets like `deploy_week` sweep with their schedule applied.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import Pool
from typing import Sequence

from repro.core.scheduler import PlacementPolicy
from repro.errors import ConfigurationError
from repro.fleet.config import FleetConfig
from repro.fleet.presets import preset_config
from repro.fleet.scenario import schedule_for
from repro.fleet.simulator import FleetSimulator


@dataclass(frozen=True, slots=True)
class SweepResult:
    """One seed's flat summary dict, tagged with its seed."""

    seed: int
    summary: dict


def _run_one(task: tuple[FleetConfig, int, str]
             ) -> tuple[int, dict[str, float]]:
    """Worker entry: one (config, seed, policy) run.

    Module-level (not a closure or lambda) so it pickles under the
    spawn start method as well as fork.
    """
    config, seed, policy_value = task
    windows = schedule_for(config.deploy_schedule, config).windows \
        if config.deploy_schedule else ()
    report = FleetSimulator(config, seed=seed, windows=windows).run(
        PlacementPolicy(policy_value))
    return seed, report.summary


def run_sweep(config: FleetConfig | str, seeds: Sequence[int], *,
              policy: PlacementPolicy = PlacementPolicy.OCS,
              processes: int | None = None) -> list[SweepResult]:
    """Run `config` under `policy` for every seed; sorted by seed.

    `config` may be a preset name.  `processes=None` uses one worker
    per core; any worker count — default or explicit — is clamped to
    the seed count, since extra workers could only sit idle while
    costing pool spawn time.  A resolved count of 1 (either requested
    or a single-seed sweep) runs inline in this process, bypassing
    multiprocessing entirely — no pool spawn overhead for tiny sweeps,
    and handy under debuggers and in sandboxes that forbid fork.
    """
    if isinstance(config, str):
        config = preset_config(config)
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("sweep needs at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ConfigurationError(f"sweep seeds repeat: {seeds}")
    if any(seed < 0 for seed in seeds):
        raise ConfigurationError(f"sweep seeds must be >= 0: {seeds}")
    tasks = [(config, seed, policy.value) for seed in seeds]
    if processes is None:
        processes = os.cpu_count() or 1
    processes = min(processes, len(tasks))
    if processes <= 1:
        pairs = [_run_one(task) for task in tasks]
    else:
        with Pool(processes=processes) as pool:
            pairs = pool.map(_run_one, tasks)
    pairs.sort(key=lambda pair: pair[0])
    return [SweepResult(seed=seed, summary=summary)
            for seed, summary in pairs]


def sweep_mean(results: Sequence[SweepResult]) -> dict[str, float]:
    """Per-metric mean across the ensemble (stable key order).

    Every seed's summary carries the same key set (the telemetry
    module's stable schema), so the mean is taken key-by-key in the
    first result's order.
    """
    if not results:
        return {}
    count = len(results)
    return {key: sum(result.summary[key] for result in results) / count
            for key in results[0].summary}

"""The fast engine tier: batched events, columnar jobs, priced plans.

The strict tier (:meth:`repro.fleet.simulator.FleetSimulator.run`) is
byte-identical to the seed outputs and pays for it: every event fires a
Python callback, every callback runs a full dispatch, and every
placement programs a real per-pod switch bank it will tear down again.
The paper's fleet-level claims are ensemble statistics over many seeds
— goodput availability, the OCS advantage — not single-trace bytes, so
this module trades *trace*-identity for throughput under an explicit,
documented contract (``determinism="fast"`` on the config):

* **Batched event application.**  Events live in a
  :class:`repro.sim.events.TypedEventQueue` as ``(time, kind, a, b)``
  rows, and every event sharing a timestamp drains as one batch
  (:meth:`~repro.sim.events.TypedEventQueue.pop_batch`).  A batch
  applies completions, repairs, failures, then arrivals, and runs ONE
  dispatch — where the strict tier re-dispatches after every event.
  An arrivals-only batch with warm failure caches dispatches only the
  new arrivals: every older queued job's escalation rungs are known
  cached (the caches were stamped by the last no-movement pass), so
  the restricted pass is outcome-identical to a full sweep.
* **Structure-of-arrays job accounting.**  A :class:`JobTable` keeps
  priority/blocks/submitted/started/end/pod/state as numpy columns so
  queue ordering is one ``lexsort`` and single-pod placement is one
  masked ``argmin`` over the fleet's shared free-count vector —
  replacing the per-job ``ActiveJob`` attribute walks of the strict
  dispatch loop.
* **Priced plans instead of programmed fabrics.**  A rewiring's cost
  (circuits, trunk ports, critical-path latency) is a pure function of
  the slice's block grid and its per-pod block counts — never of which
  physical blocks host it — so :func:`plan_price` memoizes one
  :class:`PlanPrice` per ``(grid, counts)`` and the engine never
  builds adjacency lists or programs switch banks at all.  The trunk
  ledger (:class:`FastMachineLedger`) stays live and exact, because
  trunk ports are a schedulable resource the planner budgets against.
* **Vectorized telemetry.**  Segment accounting appends rows to a
  columnar buffer; :meth:`repro.fleet.telemetry.FleetTelemetry.
  absorb_segments` banks them as dot products at finalize.

The contract, precisely: fast runs are **self-deterministic** (same
seed, same config → byte-identical summaries on every run), satisfy
every block-conservation and trunk-accounting invariant exactly (the
full invariant rescan is *forced* at finalize even under ``python
-O``), and are **statistically equivalent** to strict runs — per-metric
ensemble means over the seed sweep agree within 2% (gated by
``benchmarks/check_equivalence.py``).  Individual traces may differ
from strict where same-time ordering matters: a batch retires all its
completions before its failures, and an arrival whose defrag or
preemption frees blocks can rescue queued work in a different order
than the strict per-event cascade.  Runs that need the per-event
decision log or span tracer must use the strict tier
(``determinism="fast"`` with observability is a configuration error).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.scheduler import PlacementPolicy, PlacementStrategy
from repro.core.slicing import SliceShape, block_grid, canonical_shape
from repro.errors import ConfigurationError, OCSError
from repro.fleet.cluster import FleetState
from repro.fleet.config import FleetConfig
from repro.fleet.failures import (downtime_block_seconds,
                                  drained_block_seconds, overlay_windows,
                                  spare_repair_count)
from repro.fleet.scheduler import _EPSILON, ActiveJob, FleetScheduler
from repro.fleet.telemetry import FleetTelemetry
from repro.fleet.workload import FleetJob
from repro.ocs.fabric import FACE_LINKS
from repro.ocs.reconfigure import grid_adjacency_indices
from repro.sim.events import Simulator, TypedEventQueue
from repro.topology.builder import is_block_multiple

#: Typed event kinds.  Within one timestamp batch the engine applies
#: completions, then repairs, then failures, then arrivals, then the
#: serving tier's control tick — freed capacity is visible to
#: everything placed at that instant, and a tick scales against the
#: batch's post-event fleet exactly like the strict tier's
#: insertion-order tie-break.
K_ARRIVAL = 0
K_DOWN = 1
K_UP = 2
K_COMPLETE = 3
K_TICK = 4

#: JobTable states.
#: Sentinel for masked argmin over the free-count vector.
_INT64_MAX = np.iinfo(np.int64).max

S_IDLE = 0      # not yet arrived
S_QUEUED = 1
S_RUNNING = 2
S_DONE = 3


# -- plan pricing -----------------------------------------------------------------


@dataclass(frozen=True)
class PlanPrice:
    """Everything a rewiring costs, with no physical wiring attached.

    Mirrors the consumer surface of :class:`repro.fleet.machine.
    MachinePlan` (circuit counts, trunk ports, latency) value-for-value
    — every quantity is a pure function of the slice's block grid and
    its per-region block counts, independent of which physical blocks
    host it, which is what makes the memoization sound.
    """

    num_blocks: int            # n; 0 for sub-block (empty) plans
    trunk_count: int           # adjacencies crossing a region boundary
    ports_by_region: tuple[int, ...]   # trunk endpoints per region
    pod_moves: int             # busiest pod switch's mirror moves
    trunk_moves: int           # busiest machine switch's mirror moves

    @property
    def empty(self) -> bool:
        """True when nothing needs programming (sub-block slices)."""
        return self.num_blocks == 0

    @property
    def cross_pod(self) -> bool:
        """True when the plan rides the trunk layer."""
        return self.trunk_count > 0

    @property
    def num_adjacencies(self) -> int:
        """Block adjacencies across every layer (3 per block placed)."""
        return 3 * self.num_blocks

    @property
    def num_circuits(self) -> int:
        """Chip-level circuits the plan programs (16 per adjacency)."""
        return self.num_adjacencies * FACE_LINKS

    @property
    def num_trunk_circuits(self) -> int:
        """Chip circuits riding the machine-level trunk bank."""
        return self.trunk_count * FACE_LINKS

    @property
    def cross_fraction(self) -> float:
        """Share of the slice's links that traverse the trunk layer."""
        total = self.num_adjacencies
        return self.trunk_count / total if total else 0.0

    @property
    def total_trunk_ports(self) -> int:
        """Trunk ports the plan holds across all pods (2 per adjacency)."""
        return 2 * self.trunk_count

    def latency_seconds(self, base_seconds: float, switch_seconds: float,
                        trunk_base_seconds: float) -> float:
        """Critical-path seconds before the slice's links carry traffic."""
        if self.empty:
            return 0.0
        latency = base_seconds + switch_seconds * self.pod_moves
        if self.trunk_count:
            latency += trunk_base_seconds + \
                switch_seconds * self.trunk_moves
        return latency


_EMPTY_PRICE = PlanPrice(num_blocks=0, trunk_count=0, ports_by_region=(),
                         pod_moves=0, trunk_moves=0)


@lru_cache(maxsize=None)
def _adjacency_arrays(grid: tuple[int, int, int]
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The grid's torus walk as (dim, low_slot, high_slot) columns."""
    adj = np.asarray(grid_adjacency_indices(grid), dtype=np.int64)
    return adj[:, 0], adj[:, 1], adj[:, 2]


@lru_cache(maxsize=None)
def _price_for(grid: tuple[int, int, int],
               counts: tuple[int, ...]) -> PlanPrice:
    n = grid[0] * grid[1] * grid[2]
    if sum(counts) != n:
        raise OCSError(
            f"grid {grid} does not cover {sum(counts)} assigned blocks")
    if len(counts) == 1:
        # Pod-local: the torus walk gives every block one "+"-face
        # adjacency per dimension, so each dimension's switches program
        # exactly n circuits and nothing touches the trunk layer.
        return PlanPrice(num_blocks=n, trunk_count=0,
                         ports_by_region=(0,), pod_moves=n, trunk_moves=0)
    dims, low, high = _adjacency_arrays(grid)
    region = np.repeat(np.arange(len(counts), dtype=np.int64),
                       np.asarray(counts, dtype=np.int64))
    low_region = region[low]
    high_region = region[high]
    cross = low_region != high_region
    trunk_count = int(np.count_nonzero(cross))
    if trunk_count:
        trunk_moves = int(np.bincount(dims[cross], minlength=3).max())
        ports = np.bincount(low_region[cross], minlength=len(counts)) + \
            np.bincount(high_region[cross], minlength=len(counts))
        ports_by_region = tuple(int(p) for p in ports)
    else:
        trunk_moves = 0
        ports_by_region = (0,) * len(counts)
    intra = ~cross
    if intra.any():
        # max over (region, dim) == the busiest pod fabric's busiest
        # dimension, exactly MachinePlan's max over pod moves_per_switch.
        pod_moves = int(np.bincount(
            low_region[intra] * 3 + dims[intra]).max())
    else:
        pod_moves = 0
    return PlanPrice(num_blocks=n, trunk_count=trunk_count,
                     ports_by_region=ports_by_region,
                     pod_moves=pod_moves, trunk_moves=trunk_moves)


@lru_cache(maxsize=None)
def plan_price(shape: SliceShape, counts: tuple[int, ...]) -> PlanPrice:
    """The memoized price of hosting `shape` split as `counts` per pod.

    `counts` is the block count of each region of the placement, in
    assignment order — the only property of a placement its rewiring
    price depends on (physical block ids never matter: the OCS can
    wire any blocks into the same virtual torus).  Memoized on the
    (shape, counts) pair itself so repeat placements skip even the
    shape canonicalization.
    """
    dims = canonical_shape(shape)
    if not is_block_multiple(dims):
        return _EMPTY_PRICE
    return _price_for(block_grid(dims), counts)


# -- the trunk ledger --------------------------------------------------------------


class FastMachineLedger:
    """The machine fabric reduced to its schedulable core: trunk ports.

    API-compatible with :class:`repro.fleet.machine.MachineFabric` for
    everything the fleet scheduler's planning paths touch (budgets,
    what-if exclusions, the release watcher, the accounting check) but
    with no per-pod switch banks behind it: the strict tier's
    ``release`` walks every pod's fabric on every job teardown — the
    single largest scale cost at 64 pods — where this ledger pops one
    dict entry.  Physical wiring is priced, never programmed
    (:func:`plan_price`).
    """

    def __init__(self, num_pods: int, blocks_per_pod: int,
                 trunk_ports: int) -> None:
        if num_pods < 1:
            raise OCSError(f"need at least one pod, got {num_pods}")
        if trunk_ports < 0:
            raise OCSError(f"trunk_ports must be >= 0, got {trunk_ports}")
        self.trunk_ports = trunk_ports
        self._num_pods = num_pods
        self._trunk_free = [trunk_ports] * num_pods
        self._held_trunks: dict[int, dict[int, int]] = {}
        #: Monotone count of releases that actually freed trunk ports;
        #: the dispatch pass watches it exactly as on MachineFabric.
        self.trunk_release_count = 0

    @property
    def num_pods(self) -> int:
        """Pods terminated on the trunk layer."""
        return self._num_pods

    @property
    def trunk_capacity(self) -> int:
        """Trunk ports installed across every pod."""
        return self.trunk_ports * self._num_pods

    def trunk_free(self, pod_id: int) -> int:
        """Unused trunk ports on one pod."""
        return self._trunk_free[pod_id]

    def trunk_budget(self) -> dict[int, int]:
        """Free trunk ports per pod — the placement planner's budget."""
        return {pod_id: free
                for pod_id, free in enumerate(self._trunk_free)}

    def trunk_in_use(self) -> int:
        """Trunk ports currently held by cross-pod slices."""
        return self.trunk_capacity - sum(self._trunk_free)

    def holds_trunks(self, job_id: int) -> bool:
        """True while `job_id` has circuits on the trunk layer."""
        return job_id in self._held_trunks

    def trunk_ports_of(self, job_id: int) -> dict[int, int]:
        """Trunk ports `job_id` holds per pod (a copy; {} if none)."""
        return dict(self._held_trunks.get(job_id, {}))

    def trunk_budget_excluding(self, job_ids) -> dict[int, int]:
        """The trunk budget as if `job_ids` had already released."""
        budget = self.trunk_budget()
        for job_id in job_ids:
            for pod_id, count in self._held_trunks.get(job_id,
                                                       {}).items():
                # detlint: ignore[D005] integer trunk-port counts
                budget[pod_id] += count
        return budget

    def reserve(self, job_id: int, ports: dict[int, int]) -> None:
        """Hold `ports` trunk endpoints per pod for `job_id` (atomic)."""
        if job_id in self._held_trunks:
            raise OCSError(
                f"job {job_id} already holds trunk circuits")
        for pod_id, needed in ports.items():
            if needed > self._trunk_free[pod_id]:
                raise OCSError(
                    f"pod {pod_id} has {self._trunk_free[pod_id]} trunk "
                    f"ports free, plan needs {needed}")
        for pod_id, needed in ports.items():
            self._trunk_free[pod_id] -= needed
        if ports:
            self._held_trunks[job_id] = dict(ports)

    def release(self, job_id: int) -> int:
        """Hand back every trunk port `job_id` holds (O(1) for most)."""
        ports = self._held_trunks.pop(job_id, None)
        if not ports:
            return 0
        for pod_id, count in ports.items():
            # detlint: ignore[D005] integer trunk-port counts
            self._trunk_free[pod_id] += count
        self.trunk_release_count += 1
        # detlint: ignore[D005] integer port counts; order-free sum
        return sum(ports.values()) // 2 * FACE_LINKS

    def check_trunk_accounting(self) -> None:
        """Assert the trunk free index matches the held-circuit ledger."""
        in_use = [0] * self._num_pods
        for ports in self._held_trunks.values():
            for pod_id, count in ports.items():
                # detlint: ignore[D005] integer trunk-port counts
                in_use[pod_id] += count
        for pod_id, used in enumerate(in_use):
            if self._trunk_free[pod_id] != self.trunk_ports - used:
                raise OCSError(
                    f"pod {pod_id} trunk index out of sync: "
                    f"{self._trunk_free[pod_id]} free but "
                    f"{used}/{self.trunk_ports} held")


# -- columnar job state ------------------------------------------------------------


class JobTable:
    """Structure-of-arrays state for every job of the run.

    Rows are indexed by ``job_id`` (the generators assign ids densely
    in arrival order).  The dispatch path reads whole columns —
    ``lexsort`` over (priority, submitted, id) orders the queue, the
    shared free-count vector masks feasible pods — instead of walking
    ``ActiveJob`` attributes per job per pass.
    """

    def __init__(self, jobs: list[FleetJob]) -> None:
        size = 1 + max((job.job_id for job in jobs), default=-1)
        self.size = size
        self.priority = np.zeros(size, dtype=np.int64)
        self.blocks = np.zeros(size, dtype=np.int64)
        self.submitted = np.zeros(size, dtype=np.float64)
        self.started = np.zeros(size, dtype=np.float64)
        self.end = np.full(size, np.inf, dtype=np.float64)
        self.pod = np.full(size, -1, dtype=np.int64)
        self.state = np.full(size, S_IDLE, dtype=np.int8)
        #: Row -> live ActiveJob, the bridge into the contention paths
        #: (defrag/preemption) that still operate on rich objects.
        self.active: list[ActiveJob | None] = [None] * size
        self.job: list[FleetJob | None] = [None] * size
        for job in jobs:
            self.job[job.job_id] = job
        if jobs:
            ids = np.fromiter((job.job_id for job in jobs),
                              dtype=np.int64, count=len(jobs))
            self.priority[ids] = np.fromiter(
                (job.priority for job in jobs),
                dtype=np.int64, count=len(jobs))
            self.blocks[ids] = np.fromiter(
                (job.blocks for job in jobs),
                dtype=np.int64, count=len(jobs))

    def grow(self, min_size: int) -> None:
        """Make room for dynamically-created rows (serve replicas).

        The generators assign ids densely up front, but the serving
        tier allocates replica jobs mid-run; columns double (amortized
        O(1) per row) so every autoscaler grow stays cheap.
        """
        size = max(min_size, 2 * self.size)
        pad = size - self.size
        self.priority = np.concatenate(
            [self.priority, np.zeros(pad, dtype=np.int64)])
        self.blocks = np.concatenate(
            [self.blocks, np.zeros(pad, dtype=np.int64)])
        self.submitted = np.concatenate(
            [self.submitted, np.zeros(pad, dtype=np.float64)])
        self.started = np.concatenate(
            [self.started, np.zeros(pad, dtype=np.float64)])
        self.end = np.concatenate(
            [self.end, np.full(pad, np.inf, dtype=np.float64)])
        self.pod = np.concatenate(
            [self.pod, np.full(pad, -1, dtype=np.int64)])
        self.state = np.concatenate(
            [self.state, np.full(pad, S_IDLE, dtype=np.int8)])
        self.active.extend([None] * pad)
        self.job.extend([None] * pad)
        self.size = size


# -- the scheduler ----------------------------------------------------------------


class FastScheduler(FleetScheduler):
    """FleetScheduler with columnar hot paths and typed completions.

    Inherits every contention path (defrag, cross-pod planning,
    preemption, accounting identities) unchanged; overrides only the
    per-event hot spots: queue ordering (lexsort), single-pod placement
    (masked argmin over the shared free-count vector), rewiring (priced
    plans + the trunk ledger), completion scheduling (typed event
    rows), and segment accounting (columnar buffer).
    """

    #: Below this queue depth a plain sort beats array round-trips.
    LEXSORT_MIN_QUEUE = 8

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.events: TypedEventQueue | None = None
        self.table: JobTable | None = None
        self._counts_vec: np.ndarray | None = None
        self._segments: list[tuple] = []

    def attach(self, events: TypedEventQueue,
               jobs: list[FleetJob]) -> None:
        """Bind the typed event queue and build the job table."""
        self.events = events
        self.table = JobTable(jobs)
        # Pin the shared free-count vector once: `_find_anywhere` runs
        # per queued job per pass and the property hop adds up.
        self._counts_vec = self.state.free_counts

    # -- columnar queue discipline ------------------------------------------------

    def _enqueue(self, job: FleetJob) -> ActiveJob:
        active = super()._enqueue(job)
        table = self.table
        if job.job_id >= table.size:
            table.grow(job.job_id + 1)
        if table.job[job.job_id] is None:
            # A dynamic row (serving-tier replica): the id was allocated
            # mid-run, so its static columns fill here.
            table.job[job.job_id] = job
            table.priority[job.job_id] = job.priority
            table.blocks[job.job_id] = job.blocks
        table.state[job.job_id] = S_QUEUED
        table.submitted[job.job_id] = active.submitted_at
        table.active[job.job_id] = active
        return active

    def cancel(self, active: ActiveJob) -> None:
        super().cancel(active)
        self.table.state[active.job.job_id] = S_DONE

    def _queue_in_order(self) -> list[ActiveJob]:
        queue = self.queue
        if len(queue) < self.LEXSORT_MIN_QUEUE:
            return sorted(queue, key=self._queue_order)
        ids = np.fromiter((active.job.job_id for active in queue),
                          dtype=np.int64, count=len(queue))
        # lexsort keys run minor-to-major: id breaks ties under
        # submitted-at under descending priority — the same total
        # order as the strict tier's sort key.
        order = np.lexsort((ids, self.table.submitted[ids],
                            -self.table.priority[ids]))
        return [queue[k] for k in order.tolist()]

    def _dispatch_pass(self, candidates: list[ActiveJob] | None = None
                       ) -> bool:
        """Capacity prefilter in front of the strict sweep.

        A queued job that cannot preempt and needs more blocks than the
        fleet has free fails every escalation rung deterministically:
        free and cross-pod placement and defragmentation are all gated
        on free capacity (defrag only rearranges blocks, it cannot mint
        them), and capacity only grows through paths that bump the grow
        epoch and re-run a full dispatch.  So the sweep drops such jobs
        up front — skipping their rung attempts and cache bookkeeping —
        without changing any outcome.  The skipped jobs never enter the
        failure caches, but the warm-cache contract stays sound: while
        the caches are warm, total free capacity can only have shrunk
        since the stamp, so an infeasible job stays infeasible.
        """
        if candidates is not None or self.obs.enabled:
            return super()._dispatch_pass(candidates)
        queue = self.queue
        if not queue:
            return False
        total_free = int(self._counts_vec.sum())
        preempt_priority = self.config.preempt_priority
        if len(queue) < self.LEXSORT_MIN_QUEUE:
            keep = [active for active in queue
                    if active.job.blocks <= total_free
                    or active.job.priority >= preempt_priority]
            keep.sort(key=self._queue_order)
            # An empty candidate list still stamps the caches in the
            # strict pass (no rung ran, so no grow event was seen).
            return super()._dispatch_pass(keep)
        table = self.table
        ids = np.fromiter((active.job.job_id for active in queue),
                          dtype=np.int64, count=len(queue))
        mask = (table.blocks[ids] <= total_free) \
            | (table.priority[ids] >= preempt_priority)
        sel = np.flatnonzero(mask)
        sub = ids[sel]
        order = np.lexsort((sub, table.submitted[sub],
                            -table.priority[sub]))
        return super()._dispatch_pass(
            [queue[k] for k in sel[order].tolist()])

    def _interrupt(self, active: ActiveJob, *, preempted: bool) -> None:
        super()._interrupt(active, preempted=preempted)
        table = self.table
        if active.remaining <= _EPSILON:
            table.state[active.job.job_id] = S_DONE
        else:
            table.state[active.job.job_id] = S_QUEUED
            table.submitted[active.job.job_id] = active.submitted_at

    # -- columnar placement -------------------------------------------------------

    #: Below this pod count the strict tier's plain sort beats the
    #: numpy round-trip; the vectorized path wins at fleet scale.
    VECTOR_MIN_PODS = 16

    def _find_anywhere(self, job: FleetJob):
        if self.policy is not PlacementPolicy.OCS:
            return super()._find_anywhere(job)
        needed = job.blocks
        if len(self.state.pods) < self.VECTOR_MIN_PODS:
            # Small fleet: a tracking loop beats both the strict sort
            # and the numpy round-trip.  Iterating in pod-id order with
            # a strict < keeps the lowest pod id among ties — the same
            # winner as the strict tier's (num_free, pod_id) sort.
            first_fit = self.strategy is PlacementStrategy.FIRST_FIT
            best = None
            best_free = _INT64_MAX
            for pod in self.state.pods:
                free = pod.num_free
                if free >= needed:
                    if first_fit:
                        best = pod
                        break
                    if free < best_free:
                        best, best_free = pod, free
            if best is None:
                return None
            return [(best, best.first_free(needed))]
        counts = self._counts_vec
        if self.strategy is PlacementStrategy.FIRST_FIT:
            feasible = counts >= needed
            pod_idx = int(np.argmax(feasible))  # first feasible pod id
            if not feasible[pod_idx]:
                return None
        else:
            # best_fit/defrag: least free space among feasible pods;
            # argmin returns the lowest pod id among ties, matching the
            # strict tier's (num_free, pod_id) sort.
            masked = np.where(counts >= needed, counts, _INT64_MAX)
            pod_idx = int(np.argmin(masked))
            if counts[pod_idx] < needed:
                return None
        pod = self.state.pods[pod_idx]
        return [(pod, pod.first_free(needed))]

    # -- priced rewiring ----------------------------------------------------------

    def _rewire(self, active: ActiveJob) -> float:
        active.trunk_tax = 0.0
        active.trunk_ports_held = 0
        machine = self.state.machine
        if machine is None:
            return 0.0
        job = active.job
        price = plan_price(job.shape,
                           tuple(len(blocks)
                                 for _, blocks in active.assignments))
        if price.empty:
            return 0.0
        if price.trunk_count:
            machine.reserve(job.job_id, {
                active.assignments[region][0]: ports
                for region, ports in enumerate(price.ports_by_region)
                if ports})
        self.telemetry.ocs_reconfigurations += 1
        self.telemetry.circuits_programmed += price.num_circuits
        if price.cross_pod:
            self.telemetry.trunk_circuits_programmed += \
                price.num_trunk_circuits
            active.trunk_tax = self.config.trunk_bandwidth_tax * \
                price.cross_fraction
            active.trunk_ports_held = price.total_trunk_ports
        return price.latency_seconds(self.config.reconfig_base_seconds,
                                     self.config.ocs_switch_seconds,
                                     self.config.trunk_reconfig_seconds)

    # -- typed completions --------------------------------------------------------

    def _schedule_completion(self, active: ActiveJob,
                             wall: float) -> None:
        job_id = active.job.job_id
        end = self.sim.now + wall
        active.completion = self.events.push(end, K_COMPLETE, job_id)
        table = self.table
        table.state[job_id] = S_RUNNING
        table.started[job_id] = self.sim.now
        table.end[job_id] = end
        table.pod[job_id] = active.assignments[0][0] \
            if len(active.assignments) == 1 else -1
        table.active[job_id] = active

    def _finish(self, active: ActiveJob) -> None:
        super()._finish(active)
        self.table.state[active.job.job_id] = S_DONE

    # -- batched dispatch ---------------------------------------------------------

    def dispatch_batch(self, actives: list[ActiveJob]) -> None:
        """Dispatch once after applying a timestamp batch.

        `actives` are the batch's new arrivals (already enqueued).
        With warm failure caches — the caches were stamped by the last
        no-movement pass and no capacity grew since — every older
        queued job's escalation rungs (free placement, defrag,
        cross-pod, preemption) are known cached-failed, so:

        * with no arrivals, the full sweep would cache-skip every job
          and place nothing — it is skipped outright (a failure event
          that interrupted nobody, for example, dispatches for free);
        * with arrivals, a pass restricted to just them is
          outcome-identical to the full sweep.  If that pass moves
          blocks (a defrag or preemption fired), the caches are wiped
          and the full dispatch loop takes over to rescue older work.

        Cold caches always run the full dispatch loop.
        """
        machine = self.state.machine
        trunk_epoch = machine.trunk_release_count \
            if machine is not None else 0
        caches_warm = self._cache_epoch == self._grow_epoch and \
            self._cache_trunk_epoch == trunk_epoch and \
            not self.obs.enabled
        if not caches_warm or len(actives) >= len(self.queue):
            self.dispatch()
            return
        if not actives:
            self._post_dispatch_checks()
            return
        if len(actives) > 1:
            actives = sorted(actives, key=self._queue_order)
        if self._dispatch_pass(actives):
            while self._dispatch_pass():
                pass
        self._post_dispatch_checks()

    # -- columnar telemetry -------------------------------------------------------

    def _account_segment(self, active: ActiveJob, elapsed: float,
                         reconfig: float, restore: float, useful: float,
                         replay: float, writes: float,
                         stall: float = 0.0) -> None:
        self._segments.append(
            (active.job.job_id, active.job.blocks, elapsed, reconfig,
             restore, useful, replay, writes, stall,
             1.0 if active.is_cross_pod else 0.0))

    def _flush_segments(self) -> None:
        """Bank the buffered segments into telemetry in one pass."""
        if not self._segments:
            return
        columns = np.asarray(self._segments, dtype=np.float64)
        self._segments = []
        self.telemetry.absorb_segments(columns)

    def finalize(self, horizon: float) -> None:
        super().finalize(horizon)
        self._flush_segments()
        # The fast contract keeps the invariants *exact* even when the
        # per-dispatch guard is compiled out (python -O): one full
        # from-scratch rescan always runs before the report.
        if not self.verify_invariants:
            self.state.check_invariants()


# -- the engine -------------------------------------------------------------------


def run_fast(fleet, policy: PlacementPolicy,
             strategy: PlacementStrategy | None = None, *,
             profiler=None):
    """One fleet run on the fast tier; returns the usual FleetReport.

    `fleet` is a constructed :class:`repro.fleet.simulator.
    FleetSimulator` (job stream and outage trace already drawn, so
    strict and fast runs of the same simulator compare on
    byte-identical inputs).  Mirrors ``FleetSimulator.run`` end to end
    — overlayed outages, spare-repair counting, drain accounting, the
    report shape — with the batched engine in place of the per-event
    callback loop.  Observability is a configuration error on this
    tier; `profiler` is supported (its scheduler-phase shims wrap the
    same methods).
    """
    from repro.fleet.simulator import FleetReport

    config: FleetConfig = fleet.config
    if config.observability:
        raise ConfigurationError(
            "determinism='fast' cannot record observability")
    strategy = strategy if strategy is not None else config.strategy
    horizon = config.horizon_seconds
    sim = Simulator()
    state = FleetState(config.num_pods, config.blocks_per_pod,
                       with_fabric=False,
                       trunk_ports=config.trunk_ports)
    if policy is PlacementPolicy.OCS:
        # The priced-plan engine never programs pod switch banks; the
        # ledger keeps the schedulable part (trunk ports) live.
        state.machine = FastMachineLedger(config.num_pods,
                                          config.blocks_per_pod,
                                          config.trunk_ports)
    telemetry = FleetTelemetry()
    scheduler = FastScheduler(config, policy, sim, state, telemetry,
                              strategy=strategy)
    outages = overlay_windows(fleet.trace, fleet.windows)
    telemetry.spare_port_repairs = spare_repair_count(outages)
    events = TypedEventQueue()
    scheduler.attach(events, fleet.jobs)
    job_rows = scheduler.table.job
    tier = None
    if config.serve_scenario:
        from repro.fleet.serve.scenarios import scenario_for
        from repro.fleet.serve.tier import ServingTier
        tier = ServingTier(
            scenario_for(config.serve_scenario, config), config,
            scheduler,
            base_job_id=1 + max((job.job_id for job in fleet.jobs),
                                default=-1))
    # External events (arrivals, outage starts/ends, serve ticks) are
    # all known before the run, so they never ride the heap: a stable
    # sort of one flat list — same-time entries keep the order the
    # strict tier would have pushed them in (ticks installed last) —
    # and an index walk over it.  Only completions, which are created
    # (and cancelled) mid-run, pay for heap traffic.
    ext: list[tuple[float, int, int, int]] = []
    for job in fleet.jobs:
        if job.arrival <= horizon:
            ext.append((job.arrival, K_ARRIVAL, job.job_id, 0))
    for outage in outages:
        if outage.start <= horizon:
            ext.append((outage.start, K_DOWN, outage.pod_id,
                        outage.block_id))
        if outage.end <= horizon:
            ext.append((outage.end, K_UP, outage.pod_id,
                        outage.block_id))
    if tier is not None:
        for t in tier.tick_times(horizon):
            ext.append((t, K_TICK, 0, 0))
    ext.sort(key=lambda entry: entry[0])
    if profiler is not None:
        profiler.install(scheduler, sim)
    began = time.perf_counter()
    table_active = scheduler.table.active
    finish = scheduler._finish
    apply_up = scheduler._apply_block_up
    apply_down = scheduler._apply_block_down
    enqueue = scheduler._enqueue
    dispatch_batch = scheduler.dispatch_batch
    idx, n_ext = 0, len(ext)
    while True:
        comp_time = events.peek_time()
        ext_time = ext[idx][0] if idx < n_ext else None
        if comp_time is None:
            next_time = ext_time
        elif ext_time is None or comp_time < ext_time:
            next_time = comp_time
        else:
            next_time = ext_time
        if next_time is None or next_time > horizon:
            break
        sim.now = next_time
        completes: list = []
        if comp_time == next_time:
            completes = events.pop_batch()[1]
        arrivals: list = []
        downs: list = []
        ups: list = []
        ticked = False
        fired = len(completes)
        while idx < n_ext and ext[idx][0] == next_time:
            _, kind, a, b = ext[idx]
            idx += 1
            fired += 1
            if kind == K_ARRIVAL:
                arrivals.append(a)
            elif kind == K_DOWN:
                downs.append((a, b))
            elif kind == K_UP:
                ups.append((a, b))
            else:
                ticked = True
        sim._events_fired += fired
        for event in completes:
            finish(table_active[event.a])
        for a, b in ups:
            apply_up(a, b)
        for a, b in downs:
            apply_down(a, b)
        new_actives = [enqueue(job_rows[a]) for a in arrivals]
        if ticked:
            # The tick closes its interval and resizes the pools
            # against the batch's post-event capacity; its fresh
            # replicas ride the same single dispatch as the arrivals.
            new_actives.extend(tier.on_tick(sim.now))
        dispatch_batch(new_actives)
    if profiler is not None:
        profiler.run_seconds += time.perf_counter() - began
    scheduler.finalize(horizon)
    capacity = config.total_blocks * horizon
    trunk_total = config.trunk_capacity \
        if policy is PlacementPolicy.OCS else 0
    drained = drained_block_seconds(fleet.windows, horizon)
    summary = telemetry.summary(
        total_blocks=config.total_blocks,
        horizon_seconds=horizon,
        trunk_ports_total=trunk_total)
    summary["drain_fraction"] = drained / capacity
    return FleetReport(
        policy=policy, strategy=strategy, config=config,
        seed=fleet.seed,
        summary=summary,
        events_fired=sim.events_fired,
        downtime_fraction=downtime_block_seconds(outages) / capacity,
        drain_fraction=drained / capacity,
        job_records=tuple(telemetry.records.values()),
        obs=None,
        serve=tier.report(telemetry) if tier is not None else None)

"""The fleet simulator: one discrete-event run of a multi-pod fleet.

Ties the subsystem together on the :mod:`repro.sim.events` kernel: a
seeded job stream (:mod:`repro.fleet.workload`) arrives into the
priority scheduler (:mod:`repro.fleet.scheduler`) while a precomputed
outage trace (:mod:`repro.fleet.failures`) knocks blocks out and
repairs them.  Because workload and failures come from independent RNG
streams spawned off one seed, the same trace can be replayed under the
OCS and static placement policies — the fleet-scale version of the
Figure 4 comparison — and, orthogonally, under any placement strategy
(first_fit, best_fit, defrag), all on byte-identical inputs.

OCS runs carry live machine-wide fabric state: every placement rewires
its pods' switches — and, for cross-pod slices, the machine-level
trunk bank — paying reconfiguration latency on its critical path and a
trunk-hop bandwidth tax while running, so the flexibility-vs-latency
tradeoff of Section 2.2 shows up in the telemetry at machine scale.
The failure trace may route optical-port outages through spare-port
repair (Section 2.2's "link testing and repairs") before the run
starts, keeping traces policy-independent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.scheduler import PlacementPolicy, PlacementStrategy
from repro.fleet.cluster import FleetState
from repro.fleet.config import (FleetConfig, NUM_STREAMS, STREAM_ARRIVALS,
                                STREAM_FAILURES, STREAM_REPAIRS,
                                STREAM_SHAPES)
from repro.fleet.failures import (BlockOutage, DrainWindow,
                                  build_failure_trace,
                                  downtime_block_seconds,
                                  drained_block_seconds, overlay_windows,
                                  spare_repair_count)
from repro.fleet.obs.metrics import MetricsSampler
from repro.fleet.obs.profiler import DispatchProfiler
from repro.fleet.obs.tracer import NULL_RECORDER, ObsRecorder
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.telemetry import FleetTelemetry, JobRecord
from repro.fleet.workload import FleetJob, TraceWorkload, generate_jobs
from repro.sim.events import Simulator
from repro.sim.rng import spawn_rngs
from repro.units import HOUR

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace -> here)
    from repro.fleet.serve.tier import ServeReport
    from repro.fleet.trace import FleetTrace

#: Anything that yields a job stream under the generate_jobs calling
#: convention: the synthetic Table 2 generator itself, or a
#: :class:`repro.fleet.workload.TraceWorkload` replaying a recording.
JobSource = Callable[..., "list[FleetJob]"]


@dataclass
class FleetReport:
    """Outcome of one fleet run under one placement policy + strategy."""

    policy: PlacementPolicy
    strategy: PlacementStrategy
    config: FleetConfig
    seed: int
    summary: dict[str, float]
    events_fired: int
    downtime_fraction: float
    #: Capacity share the deployment schedule drained (0 for plain runs).
    drain_fraction: float = 0.0
    #: Per-job lifetime records, for per-class analysis (e.g. the
    #: 48-block goodput gate); the JSON-facing summary stays flat.
    job_records: tuple[JobRecord, ...] = ()
    #: The run's observability log when recording was on; None on the
    #: default (disabled) path.  Export via :mod:`repro.fleet.obs`.
    obs: ObsRecorder | None = None
    #: Serving-tier telemetry when the config names a `serve_scenario`;
    #: None otherwise.  Lives beside the base summary (its own
    #: SERVE_SCHEMA) so the digest-gated SUMMARY_SCHEMA never moves.
    serve: ServeReport | None = None

    def goodput_for_blocks(self, blocks: int) -> float:
        """Goodput of one job class — jobs of exactly `blocks` blocks.

        Useful block-seconds the class banked, over the whole machine's
        capacity.  A class that never runs scores 0 regardless of what
        the rest of the fleet achieved.  Note this counts each job's
        *useful-progress credit* only: the trunk-stall time that the
        summary's `goodput` bucket additionally carries for cross-pod
        slices is excluded, so per-class values sum to slightly under
        `summary["goodput"]` when the bandwidth tax is nonzero.
        """
        capacity = self.config.total_blocks * self.config.horizon_seconds
        useful = sum(record.useful_seconds * record.blocks
                     for record in self.job_records
                     if record.blocks == blocks)
        return useful / capacity if capacity > 0 else 0.0

    def render(self) -> str:
        """Human-readable report block."""
        lines = [
            f"fleet run: policy={self.policy.value} "
            f"strategy={self.strategy.value} seed={self.seed} "
            f"pods={self.config.num_pods}x{self.config.blocks_per_pod} "
            f"blocks horizon={self.config.horizon_seconds / HOUR:.0f}h",
            f"  jobs: {self.summary['jobs_submitted']:.0f} submitted, "
            f"{self.summary['jobs_completed']:.0f} completed, "
            f"{self.summary['jobs_unfinished']:.0f} unfinished",
            f"  goodput {self.summary['goodput']:.3f}  "
            f"utilization {self.summary['utilization']:.3f}  "
            f"(capacity lost to outages {self.downtime_fraction:.3f})",
            f"  queue wait: mean {self.summary['mean_queue_wait'] / HOUR:.2f}h"
            f"  p95 {self.summary['p95_queue_wait'] / HOUR:.2f}h"
            f"  p99 {self.summary['p99_queue_wait'] / HOUR:.2f}h",
            f"  failures {self.summary['block_failures']:.0f}  "
            f"interruptions {self.summary['job_interruptions']:.0f}  "
            f"preemptions {self.summary['job_preemptions']:.0f}  "
            f"migrations {self.summary['job_migrations']:.0f}",
            f"  OCS rewiring: {self.summary['ocs_reconfigurations']:.0f} "
            f"reconfigurations, "
            f"{self.summary['circuits_programmed']:.0f} circuits, "
            f"{self.summary['reconfig_fraction']:.4f} of capacity",
            f"  cross-pod: "
            f"{self.summary['job_cross_pod_placements']:.0f} placements, "
            f"{self.summary['cross_pod_fraction']:.3f} of busy "
            f"block-time, trunk util "
            f"{self.summary['trunk_utilization']:.3f}, stall "
            f"{self.summary['trunk_stall_fraction']:.4f}",
            f"  contention: "
            f"{self.summary['cross_pod_preemptions']:.0f} cross-pod "
            f"preemption evictions, "
            f"{self.summary['trunk_freeing_migrations']:.0f} "
            f"trunk-freeing migrations, "
            f"{self.summary['trunk_ports_reclaimed']:.0f} trunk ports "
            f"reclaimed",
            f"  repairs: {self.summary['spare_port_repairs']:.0f} of "
            f"{self.summary['block_failures']:.0f} outages absorbed by "
            f"spare ports",
            f"  lost fractions: replay "
            f"{self.summary['replay_fraction']:.4f}  restore "
            f"{self.summary['restore_fraction']:.4f}  checkpoint writes "
            f"{self.summary['checkpoint_fraction']:.4f}",
        ]
        if self.drain_fraction > 0:
            lines.append(
                f"  deployment: {self.drain_fraction:.3f} of capacity "
                f"drained by the rollout schedule")
        if self.serve is not None:
            lines.append(self.serve.render())
        return "\n".join(lines)


@dataclass
class FleetSimulator:
    """Builds and runs one fleet scenario end to end.

    Inputs are pluggable: `workload` may be any :data:`JobSource` — by
    default the synthetic Table 2 generator, or a
    :class:`~repro.fleet.workload.TraceWorkload` replaying a recorded
    stream — and `failure_trace` may replace the drawn outage trace
    with a recorded one.  `windows` overlays planned deployment drains
    (:class:`~repro.fleet.failures.DrainWindow`) onto the failure
    trace, so multi-day rollout scenarios ride the same event loop and
    the same utilization identity as plain runs.
    """

    config: FleetConfig
    seed: int = 0
    workload: JobSource | None = None
    failure_trace: Sequence[BlockOutage] | None = None
    windows: Sequence[DrainWindow] = ()
    jobs: list[FleetJob] = field(init=False)
    trace: list[BlockOutage] = field(init=False)

    def __post_init__(self) -> None:
        rngs = spawn_rngs(self.seed, NUM_STREAMS)
        source: JobSource = self.workload if self.workload is not None \
            else generate_jobs
        self.jobs = list(source(self.config,
                                arrival_rng=rngs[STREAM_ARRIVALS],
                                shape_rng=rngs[STREAM_SHAPES]))
        self.trace = list(self.failure_trace) \
            if self.failure_trace is not None else \
            build_failure_trace(self.config, rngs[STREAM_FAILURES],
                                repair_rng=rngs[STREAM_REPAIRS])
        self.windows = tuple(self.windows)

    @classmethod
    def from_trace(cls, trace: FleetTrace, *,
                   config: FleetConfig | None = None,
                   windows: Sequence[DrainWindow] | None = None
                   ) -> FleetSimulator:
        """A simulator replaying a recorded trace instead of fresh draws.

        The trace's config and seed carry over (`config` overrides for
        replay-under-different-knobs studies — the job stream and the
        outage trace stay exactly as recorded either way), and the
        trace's deployment windows overlay unless `windows` replaces
        them.
        """
        return cls(config if config is not None else trace.config,
                   seed=trace.seed,
                   workload=TraceWorkload(tuple(trace.jobs)),
                   failure_trace=trace.outages,
                   windows=trace.windows if windows is None else windows)

    def run(self, policy: PlacementPolicy,
            strategy: PlacementStrategy | None = None, *,
            recorder: ObsRecorder | None = None,
            profiler: DispatchProfiler | None = None) -> FleetReport:
        """Simulate the scenario under `policy`/`strategy` and report.

        The job stream and outage trace are fixed at construction, so
        calling `run` repeatedly with different policies or strategies
        compares them on identical inputs.  `strategy=None` uses the
        config's default.  OCS runs get live per-pod fabrics; a static
        machine has no switches to program.  Deployment windows are
        merged into the down/up event sequence here — with none, the
        merged trace IS the failure trace, byte for byte.

        `recorder` forces observability on for this run regardless of
        `config.observability` (None = follow the config); `profiler`
        instruments the dispatch loop with wall-clock counters (see
        :class:`~repro.fleet.obs.profiler.DispatchProfiler`).  Neither
        changes any result — observers only read — but the sampler's
        ticks do grow `events_fired`.

        With ``config.determinism == "fast"`` the run is delegated to
        the batched engine (:func:`repro.fleet.engine_fast.run_fast`):
        self-deterministic and statistically equivalent to this strict
        path, but not byte-identical to it (see the config docs for
        the contract).  The fast tier has no per-event decision log,
        so combining it with a recorder is a configuration error.
        """
        if self.config.determinism == "fast":
            if recorder is not None:
                from repro.errors import ConfigurationError
                raise ConfigurationError(
                    "determinism='fast' cannot record observability; "
                    "run the strict tier for observed runs")
            from repro.fleet.engine_fast import run_fast
            return run_fast(self, policy, strategy, profiler=profiler)
        strategy = strategy if strategy is not None else \
            self.config.strategy
        horizon = self.config.horizon_seconds
        if recorder is None:
            recorder = ObsRecorder() if self.config.observability \
                else NULL_RECORDER
        sim = Simulator()
        state = FleetState(self.config.num_pods, self.config.blocks_per_pod,
                           with_fabric=policy is PlacementPolicy.OCS,
                           trunk_ports=self.config.trunk_ports)
        telemetry = FleetTelemetry()
        scheduler = FleetScheduler(self.config, policy, sim, state,
                                   telemetry, strategy=strategy,
                                   obs=recorder)
        outages = overlay_windows(self.trace, self.windows)
        # Counted after the drain overlay: a spare repair swallowed by
        # a drain window no longer bounds any downtime in the run
        # actually simulated, so it must not be reported.
        telemetry.spare_port_repairs = spare_repair_count(outages)
        for job in self.jobs:
            sim.schedule_at(job.arrival,
                            lambda j=job: scheduler.submit(j))
        for outage in outages:
            sim.schedule_at(
                outage.start,
                lambda o=outage: scheduler.on_block_down(o.pod_id,
                                                         o.block_id))
            sim.schedule_at(
                outage.end,
                lambda o=outage: scheduler.on_block_up(o.pod_id,
                                                       o.block_id))
        tier = None
        if self.config.serve_scenario:
            # Lazy: the serve package imports scheduler/workload from
            # this package, and its compare helper imports back here.
            from repro.fleet.serve.scenarios import scenario_for
            from repro.fleet.serve.tier import ServingTier
            scenario = scenario_for(self.config.serve_scenario,
                                    self.config)
            tier = ServingTier(
                scenario, self.config, scheduler,
                base_job_id=1 + max((job.job_id for job in self.jobs),
                                    default=-1))
            # Installed after arrivals and outages: a tick at time t
            # scales against the capacity left after every same-time
            # outage/drain event (insertion-order tie-break).
            tier.install(sim, horizon)
        if recorder.enabled:
            recorder.meta.update({
                "policy": policy.value, "strategy": strategy.value,
                "seed": self.seed, "num_pods": self.config.num_pods,
                "blocks_per_pod": self.config.blocks_per_pod,
                "horizon_seconds": horizon,
                "sample_every_seconds":
                    self.config.obs_sample_every_seconds})
            for window in self.windows:
                recorder.instant("drain_start", window.start,
                                 pod_id=window.pod_id,
                                 block_id=window.block_id)
                recorder.instant("drain_end", window.end,
                                 pod_id=window.pod_id,
                                 block_id=window.block_id)
            # Installed after arrivals and outages so a sample at time
            # t sees the state after every same-time event (the
            # kernel's insertion-order tie-break).
            MetricsSampler(
                recorder, scheduler, state,
                self.config.obs_sample_every_seconds).install(sim, horizon)
        if profiler is not None:
            profiler.install(scheduler, sim)
        began = time.perf_counter()
        sim.run(until=horizon)
        if profiler is not None:
            profiler.run_seconds += time.perf_counter() - began
        scheduler.finalize(horizon)
        capacity = self.config.total_blocks * horizon
        trunk_total = self.config.trunk_capacity \
            if policy is PlacementPolicy.OCS else 0
        # Per-block interval union, clamped to the horizon: overlapping
        # or outage-coincident windows on one block drain it once, so
        # the fraction can never exceed what the schedule held out.
        drained = drained_block_seconds(self.windows, horizon)
        summary = telemetry.summary(
            total_blocks=self.config.total_blocks,
            horizon_seconds=horizon,
            trunk_ports_total=trunk_total)
        # The deployment overlay's own capacity demand, next to the
        # failure taxes (0.0 for plain runs — the key is always there
        # so JSON consumers never branch on its presence).
        summary["drain_fraction"] = drained / capacity
        return FleetReport(
            policy=policy, strategy=strategy, config=self.config,
            seed=self.seed,
            summary=summary,
            events_fired=sim.events_fired,
            downtime_fraction=downtime_block_seconds(outages) / capacity,
            drain_fraction=drained / capacity,
            job_records=tuple(telemetry.records.values()),
            obs=recorder if recorder.enabled else None,
            serve=tier.report(telemetry) if tier is not None else None)


def run_fleet(config: FleetConfig, *, seed: int = 0,
              policy: PlacementPolicy = PlacementPolicy.OCS,
              strategy: PlacementStrategy | None = None) -> FleetReport:
    """One-shot convenience wrapper around :class:`FleetSimulator`."""
    return FleetSimulator(config, seed=seed).run(policy, strategy)


def compare_policies(config: FleetConfig, *,
                     seed: int = 0) -> dict[str, FleetReport]:
    """OCS and static runs over the same jobs and the same outage trace."""
    simulator = FleetSimulator(config, seed=seed)
    return {
        "ocs": simulator.run(PlacementPolicy.OCS),
        "static": simulator.run(PlacementPolicy.STATIC),
    }


def compare_strategies(config: FleetConfig, *, seed: int = 0,
                       policy: PlacementPolicy = PlacementPolicy.OCS
                       ) -> dict[str, FleetReport]:
    """All placement strategies over identical jobs and outage trace.

    Keys are the strategy values ('first_fit', 'best_fit', 'defrag'),
    all run under `policy` (OCS by default — defrag's migrations need a
    fabric that can rewire).
    """
    simulator = FleetSimulator(config, seed=seed)
    return {strategy.value: simulator.run(policy, strategy)
            for strategy in PlacementStrategy}


def compare_preemption(config: FleetConfig, *, seed: int = 0,
                       strategy: PlacementStrategy | None = None,
                       workload: JobSource | None = None
                       ) -> dict[str, FleetReport]:
    """OCS runs with machine-wide preemption on and off, same inputs.

    The contention A/B: `cross_pod_preemption` gates only how the
    scheduler resolves contention (evictions are decisions, not
    inputs), so both runs replay byte-identical job streams and outage
    traces — disabled reproduces the pod-local contention behavior
    where oversized jobs can only queue.  `workload` plugs in an
    adversarial stream (e.g. :func:`~repro.fleet.workload.
    hostile_background_mix`) in place of the Table 2 generator.
    """
    enabled = config.with_overrides(cross_pod_preemption=True)
    disabled = config.with_overrides(cross_pod_preemption=False)
    return {
        "preemption": FleetSimulator(
            enabled, seed=seed, workload=workload).run(
                PlacementPolicy.OCS, strategy),
        "queueing": FleetSimulator(
            disabled, seed=seed, workload=workload).run(
                PlacementPolicy.OCS, strategy),
    }


def compare_cross_pod(config: FleetConfig, *, seed: int = 0,
                      strategy: PlacementStrategy | None = None
                      ) -> dict[str, FleetReport]:
    """OCS runs with and without cross-pod placement, identical inputs.

    The machine-wide A/B: job generation and the failure trace never
    depend on the `cross_pod` flag, so both runs replay byte-identical
    streams — the only difference is whether jobs larger than a pod can
    ride the trunk layer or must queue forever.
    """
    enabled = config.with_overrides(cross_pod=True)
    disabled = config.with_overrides(cross_pod=False)
    return {
        "cross_pod": FleetSimulator(enabled, seed=seed).run(
            PlacementPolicy.OCS, strategy),
        "single_pod": FleetSimulator(disabled, seed=seed).run(
            PlacementPolicy.OCS, strategy),
    }

"""The fleet simulator: one discrete-event run of a multi-pod fleet.

Ties the subsystem together on the :mod:`repro.sim.events` kernel: a
seeded job stream (:mod:`repro.fleet.workload`) arrives into the
priority scheduler (:mod:`repro.fleet.scheduler`) while a precomputed
outage trace (:mod:`repro.fleet.failures`) knocks blocks out and
repairs them.  Because workload and failures come from independent RNG
streams spawned off one seed, the same trace can be replayed under the
OCS and static placement policies — the fleet-scale version of the
Figure 4 comparison — and, orthogonally, under any placement strategy
(first_fit, best_fit, defrag), all on byte-identical inputs.

OCS runs carry live machine-wide fabric state: every placement rewires
its pods' switches — and, for cross-pod slices, the machine-level
trunk bank — paying reconfiguration latency on its critical path and a
trunk-hop bandwidth tax while running, so the flexibility-vs-latency
tradeoff of Section 2.2 shows up in the telemetry at machine scale.
The failure trace may route optical-port outages through spare-port
repair (Section 2.2's "link testing and repairs") before the run
starts, keeping traces policy-independent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.scheduler import PlacementPolicy, PlacementStrategy
from repro.fleet.cluster import FleetState
from repro.fleet.config import (FleetConfig, NUM_STREAMS, STREAM_ARRIVALS,
                                STREAM_FAILURES, STREAM_REPAIRS,
                                STREAM_SHAPES)
from repro.fleet.failures import (BlockOutage, build_failure_trace,
                                  downtime_block_seconds,
                                  spare_repair_count)
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.telemetry import FleetTelemetry
from repro.fleet.workload import FleetJob, generate_jobs
from repro.sim.events import Simulator
from repro.sim.rng import spawn_rngs
from repro.units import HOUR


@dataclass
class FleetReport:
    """Outcome of one fleet run under one placement policy + strategy."""

    policy: PlacementPolicy
    strategy: PlacementStrategy
    config: FleetConfig
    seed: int
    summary: dict[str, float]
    events_fired: int
    downtime_fraction: float

    def render(self) -> str:
        """Human-readable report block."""
        lines = [
            f"fleet run: policy={self.policy.value} "
            f"strategy={self.strategy.value} seed={self.seed} "
            f"pods={self.config.num_pods}x{self.config.blocks_per_pod} "
            f"blocks horizon={self.config.horizon_seconds / HOUR:.0f}h",
            f"  jobs: {self.summary['jobs_submitted']:.0f} submitted, "
            f"{self.summary['jobs_completed']:.0f} completed, "
            f"{self.summary['jobs_unfinished']:.0f} unfinished",
            f"  goodput {self.summary['goodput']:.3f}  "
            f"utilization {self.summary['utilization']:.3f}  "
            f"(capacity lost to outages {self.downtime_fraction:.3f})",
            f"  queue wait: mean {self.summary['mean_queue_wait'] / HOUR:.2f}h"
            f"  p95 {self.summary['p95_queue_wait'] / HOUR:.2f}h",
            f"  failures {self.summary['block_failures']:.0f}  "
            f"interruptions {self.summary['job_interruptions']:.0f}  "
            f"preemptions {self.summary['job_preemptions']:.0f}  "
            f"migrations {self.summary['job_migrations']:.0f}",
            f"  OCS rewiring: {self.summary['ocs_reconfigurations']:.0f} "
            f"reconfigurations, "
            f"{self.summary['circuits_programmed']:.0f} circuits, "
            f"{self.summary['reconfig_fraction']:.4f} of capacity",
            f"  cross-pod: "
            f"{self.summary['job_cross_pod_placements']:.0f} placements, "
            f"{self.summary['cross_pod_fraction']:.3f} of busy "
            f"block-time, trunk util "
            f"{self.summary['trunk_utilization']:.3f}, stall "
            f"{self.summary['trunk_stall_fraction']:.4f}",
            f"  repairs: {self.summary['spare_port_repairs']:.0f} of "
            f"{self.summary['block_failures']:.0f} outages absorbed by "
            f"spare ports",
            f"  lost fractions: replay "
            f"{self.summary['replay_fraction']:.4f}  restore "
            f"{self.summary['restore_fraction']:.4f}  checkpoint writes "
            f"{self.summary['checkpoint_fraction']:.4f}",
        ]
        return "\n".join(lines)


@dataclass
class FleetSimulator:
    """Builds and runs one fleet scenario end to end."""

    config: FleetConfig
    seed: int = 0
    jobs: list[FleetJob] = field(init=False)
    trace: list[BlockOutage] = field(init=False)

    def __post_init__(self) -> None:
        rngs = spawn_rngs(self.seed, NUM_STREAMS)
        self.jobs = generate_jobs(self.config,
                                  arrival_rng=rngs[STREAM_ARRIVALS],
                                  shape_rng=rngs[STREAM_SHAPES])
        self.trace = build_failure_trace(self.config,
                                         rngs[STREAM_FAILURES],
                                         repair_rng=rngs[STREAM_REPAIRS])

    def run(self, policy: PlacementPolicy,
            strategy: PlacementStrategy | None = None) -> FleetReport:
        """Simulate the scenario under `policy`/`strategy` and report.

        The job stream and outage trace are fixed at construction, so
        calling `run` repeatedly with different policies or strategies
        compares them on identical inputs.  `strategy=None` uses the
        config's default.  OCS runs get live per-pod fabrics; a static
        machine has no switches to program.
        """
        strategy = strategy if strategy is not None else \
            self.config.strategy
        sim = Simulator()
        state = FleetState(self.config.num_pods, self.config.blocks_per_pod,
                           with_fabric=policy is PlacementPolicy.OCS,
                           trunk_ports=self.config.trunk_ports)
        telemetry = FleetTelemetry()
        telemetry.spare_port_repairs = spare_repair_count(self.trace)
        scheduler = FleetScheduler(self.config, policy, sim, state,
                                   telemetry, strategy=strategy)
        for job in self.jobs:
            sim.schedule_at(job.arrival,
                            lambda j=job: scheduler.submit(j))
        for outage in self.trace:
            sim.schedule_at(
                outage.start,
                lambda o=outage: scheduler.on_block_down(o.pod_id,
                                                         o.block_id))
            sim.schedule_at(
                outage.end,
                lambda o=outage: scheduler.on_block_up(o.pod_id,
                                                       o.block_id))
        sim.run(until=self.config.horizon_seconds)
        scheduler.finalize(self.config.horizon_seconds)
        capacity = self.config.total_blocks * self.config.horizon_seconds
        trunk_total = self.config.trunk_capacity \
            if policy is PlacementPolicy.OCS else 0
        return FleetReport(
            policy=policy, strategy=strategy, config=self.config,
            seed=self.seed,
            summary=telemetry.summary(
                total_blocks=self.config.total_blocks,
                horizon_seconds=self.config.horizon_seconds,
                trunk_ports_total=trunk_total),
            events_fired=sim.events_fired,
            downtime_fraction=downtime_block_seconds(self.trace) / capacity)


def run_fleet(config: FleetConfig, *, seed: int = 0,
              policy: PlacementPolicy = PlacementPolicy.OCS,
              strategy: PlacementStrategy | None = None) -> FleetReport:
    """One-shot convenience wrapper around :class:`FleetSimulator`."""
    return FleetSimulator(config, seed=seed).run(policy, strategy)


def compare_policies(config: FleetConfig, *,
                     seed: int = 0) -> dict[str, FleetReport]:
    """OCS and static runs over the same jobs and the same outage trace."""
    simulator = FleetSimulator(config, seed=seed)
    return {
        "ocs": simulator.run(PlacementPolicy.OCS),
        "static": simulator.run(PlacementPolicy.STATIC),
    }


def compare_strategies(config: FleetConfig, *, seed: int = 0,
                       policy: PlacementPolicy = PlacementPolicy.OCS
                       ) -> dict[str, FleetReport]:
    """All placement strategies over identical jobs and outage trace.

    Keys are the strategy values ('first_fit', 'best_fit', 'defrag'),
    all run under `policy` (OCS by default — defrag's migrations need a
    fabric that can rewire).
    """
    simulator = FleetSimulator(config, seed=seed)
    return {strategy.value: simulator.run(policy, strategy)
            for strategy in PlacementStrategy}


def compare_cross_pod(config: FleetConfig, *, seed: int = 0,
                      strategy: PlacementStrategy | None = None
                      ) -> dict[str, FleetReport]:
    """OCS runs with and without cross-pod placement, identical inputs.

    The machine-wide A/B: job generation and the failure trace never
    depend on the `cross_pod` flag, so both runs replay byte-identical
    streams — the only difference is whether jobs larger than a pod can
    ride the trunk layer or must queue forever.
    """
    enabled = dataclasses.replace(config, cross_pod=True)
    disabled = dataclasses.replace(config, cross_pod=False)
    return {
        "cross_pod": FleetSimulator(enabled, seed=seed).run(
            PlacementPolicy.OCS, strategy),
        "single_pod": FleetSimulator(disabled, seed=seed).run(
            PlacementPolicy.OCS, strategy),
    }

"""Deterministic request-traffic curves for the serving tier.

One :class:`ModelTraffic` describes the open-loop arrival rate of one
served model: a diurnal sinusoid between a night floor and the daily
peak, times any surge windows (a launch spike, a failover pile-on).
The curve is a pure function of simulated time — no RNG stream — so
serve runs stay byte-identical on the strict tier and self-
deterministic on the fast tier without touching the config's seeded
streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import DAY


@dataclass(frozen=True)
class SurgeWindow:
    """A multiplicative traffic spike over ``[start, end)`` seconds."""

    start: float
    end: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"surge window must end after it starts, got "
                f"[{self.start}, {self.end})")
        if self.multiplier <= 0:
            raise ConfigurationError(
                f"surge multiplier must be > 0, got {self.multiplier}")


@dataclass(frozen=True)
class ModelTraffic:
    """The arrival curve and serving requirements of one model.

    Attributes:
        name: the deployment's name (pool key and report label).
        peak_qps: the diurnal curve's daily maximum, before surges.
        replica_chips: chips of one replica slice; the per-replica
            capacity and base latency derive from
            :func:`repro.models.serving.serving_estimate` at this size.
        slo_seconds: per-request latency SLO the pool is held to.
        base_fraction: night floor as a share of `peak_qps`.
        phase_seconds: time of the daily *trough*; the peak sits half a
            day later.
        surges: surge windows multiplied onto the diurnal curve.
    """

    name: str
    peak_qps: float
    replica_chips: int
    slo_seconds: float
    base_fraction: float = 0.35
    phase_seconds: float = 0.0
    surges: tuple[SurgeWindow, ...] = ()

    def __post_init__(self) -> None:
        if self.peak_qps <= 0:
            raise ConfigurationError("peak_qps must be > 0")
        if self.replica_chips < 1:
            raise ConfigurationError("replica_chips must be >= 1")
        if self.slo_seconds <= 0:
            raise ConfigurationError("slo_seconds must be > 0")
        if not 0.0 < self.base_fraction <= 1.0:
            raise ConfigurationError("base_fraction must be in (0, 1]")

    def diurnal_qps(self, t: float) -> float:
        """The daily curve alone — what a scheduled plan can know."""
        shape = 0.5 * (1.0 - math.cos(
            2.0 * math.pi * (t - self.phase_seconds) / DAY))
        return self.peak_qps * (self.base_fraction +
                                (1.0 - self.base_fraction) * shape)

    def surge_multiplier(self, t: float) -> float:
        """Product of every surge window covering `t` (1.0 outside)."""
        multiplier = 1.0
        for surge in self.surges:
            if surge.start <= t < surge.end:
                multiplier *= surge.multiplier
        return multiplier

    def qps_at(self, t: float) -> float:
        """Instantaneous arrival rate: diurnal curve times surges."""
        return self.diurnal_qps(t) * self.surge_multiplier(t)

    @property
    def peak_qps_with_surge(self) -> float:
        """Upper bound of the full curve — the static pool's pin point.

        The diurnal maximum times the largest surge multiplier: what a
        peak-pinned capacity split must provision for to never shed.
        """
        worst = max((s.multiplier for s in self.surges), default=1.0)
        return self.peak_qps * max(1.0, worst)

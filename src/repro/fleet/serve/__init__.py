"""Online serving tier: request traffic and autoscaling on fleet slices.

The request layer above block residency (Section 3.1's "serving
deployments that last for extended periods", scaled to the ROADMAP's
"millions of users"): open-loop arrivals follow per-model diurnal QPS
curves (:mod:`repro.fleet.serve.traffic`), each model's replica pool
maps onto real fleet slices (:mod:`repro.fleet.serve.pool`) held by
``kind="serve"`` :class:`~repro.fleet.workload.FleetJob` s, and an
autoscaler policy family (:mod:`repro.fleet.serve.autoscaler`) grows
and shrinks pools by submitting/cancelling those jobs through the
actual scheduler — so traffic surges contend with training for blocks
and trunk ports, in both determinism tiers.

Latency is analytic, not per-request: millions of QPS cannot be one
event each, so each control tick closes an M/M/1-style interval per
pool — utilization from ready replicas, a shifted-exponential response
model for p50/p99 and SLO attainment — keeping serve runs exactly
deterministic (strict stays byte-identical; fast stays
self-deterministic).  The tier's chip-second accounting reconciles
through the existing utilization identity: every replica-second it
reports is a ``busy_seconds`` segment the scheduler banked.

Quickstart::

    from repro.fleet import preset_config, compare_autoscalers
    reports = compare_autoscalers(preset_config("serve_surge"), seed=0)
    print(reports["reactive"].serve.render())
    assert reports["reactive"].serve.summary["slo_attainment_per_chip"] \
        > reports["static"].serve.summary["slo_attainment_per_chip"]
"""

from repro.fleet.serve.autoscaler import AUTOSCALERS, desired_replicas
from repro.fleet.serve.pool import ReplicaPool
from repro.fleet.serve.scenarios import (SCENARIOS, ServeScenario,
                                         scenario_for, scenario_names)
from repro.fleet.serve.tier import (SERVE_SCHEMA, ServeReport, ServingTier,
                                    reconciliation_residual)
from repro.fleet.serve.traffic import ModelTraffic, SurgeWindow

__all__ = [
    "AUTOSCALERS", "desired_replicas",
    "ReplicaPool",
    "SCENARIOS", "ServeScenario", "scenario_for", "scenario_names",
    "SERVE_SCHEMA", "ServeReport", "ServingTier",
    "ModelTraffic", "SurgeWindow",
    "compare_autoscalers", "reconciliation_residual",
]


def compare_autoscalers(config, *, seed: int = 0,
                        autoscalers=AUTOSCALERS):
    """Run one serve config under each autoscaler; reports by policy.

    The A/B behind the capacity-split benchmark: same traffic, same
    outage draws, same deployment schedule — only the scaling policy
    varies.  Returns ``{policy: FleetReport}`` with ``.serve`` filled.
    """
    # Lazy: the simulator imports this package for its serve hooks.
    from repro.fleet.scenario import schedule_for
    from repro.fleet.simulator import FleetSimulator, PlacementPolicy
    reports = {}
    for policy in autoscalers:
        tuned = config.with_overrides(serve_autoscaler=policy)
        windows = schedule_for(tuned.deploy_schedule, tuned).windows \
            if tuned.deploy_schedule else ()
        simulator = FleetSimulator(tuned, seed=seed, windows=windows)
        reports[policy] = simulator.run(PlacementPolicy.OCS)
    return reports

"""One model's replica pool, mapped onto real fleet slices.

A pool owns the ``kind="serve"`` :class:`~repro.fleet.workload.FleetJob`
replicas currently standing for one model.  Replicas are real scheduler
jobs: they queue, place, pay reconfiguration latency, get interrupted
by outages and drains (the scheduler requeues the same
:class:`~repro.fleet.scheduler.ActiveJob`, so failover needs no pool
bookkeeping), and hold their blocks until the autoscaler cancels them.
A replica only counts as serving *capacity* once its segment has spun
up — reconfiguration plus restore elapsed — which is exactly the lag a
predictive policy exists to hide.
"""

from __future__ import annotations

from repro.core.slicing import blocks_needed
from repro.fleet.scheduler import ActiveJob
from repro.fleet.serve.traffic import ModelTraffic
from repro.fleet.workload import PRIORITY_SERVING, FleetJob, shape_for_chips
from repro.models.dlrm import DLRMConfig
from repro.models.serving import serving_estimate

#: Readiness comparisons tolerate float accumulation at tick edges.
_READY_EPSILON = 1e-9


class ReplicaPool:
    """The live replicas (and scaling counters) of one served model."""

    def __init__(self, traffic: ModelTraffic,
                 horizon_seconds: float) -> None:
        self.traffic = traffic
        estimate = serving_estimate(DLRMConfig(), traffic.replica_chips)
        #: Sustained QPS one spun-up replica absorbs.
        self.replica_qps = estimate.qps
        #: Zero-load response time of one request (the M/M/1 service
        #: time; queueing delay stacks on top as utilization rises).
        self.base_latency = estimate.step_seconds
        self.shape = shape_for_chips(traffic.replica_chips)
        self.blocks = blocks_needed(self.shape)
        self.chips = traffic.replica_chips
        self._horizon = horizon_seconds
        #: Replicas the pool currently stands behind (queued or
        #: running; cancelled ones leave the list).  Order is creation
        #: order — scale-down pops from the tail (newest first).
        self.replicas: list[ActiveJob] = []
        self.job_ids: set[int] = set()
        self.scale_ups = 0
        self.scale_downs = 0
        self.peak_replicas = 0
        self.initial_replicas = 0

    def ready_count(self, now: float) -> int:
        """Replicas that are placed AND past their spin-up.

        A replica's segment spends ``pending_reconfig`` rewiring the
        fabric and ``pending_restore`` reloading before it can answer
        queries; until then it is capacity in flight, not capacity.
        """
        ready = 0
        for active in self.replicas:
            if active.running and \
                    now - active.started_at >= active.pending_reconfig + \
                    active.pending_restore - _READY_EPSILON:
                ready += 1
        return ready

    def grow(self, count: int, now: float, next_job_id, submit) -> None:
        """Submit `count` fresh replica jobs through the scheduler."""
        for _ in range(count):
            job = FleetJob(
                job_id=next_job_id(), kind="serve",
                model_type="MLP/DLRM", shape=self.shape, arrival=now,
                # Replicas never retire on their own: work outlives the
                # run, so only a cancel (or the horizon) ends one.
                work_seconds=2.0 * self._horizon,
                priority=PRIORITY_SERVING)
            active = submit(job)
            self.replicas.append(active)
            self.job_ids.add(job.job_id)
            self.scale_ups += 1
        self.peak_replicas = max(self.peak_replicas, len(self.replicas))

    def shrink(self, count: int, cancel) -> None:
        """Cancel `count` replicas: queued first, then newest running.

        Queued replicas cost nothing to take back; among running ones
        the most recently started has banked the least spin-up, so
        LIFO keeps the longest-warm capacity serving.
        """
        queued = [a for a in self.replicas if not a.running]
        running = sorted((a for a in self.replicas if a.running),
                         key=lambda a: (a.started_at, a.job.job_id),
                         reverse=True)
        victims = (queued[::-1] + running)[:count]
        for active in victims:
            cancel(active)
            self.replicas.remove(active)
            self.job_ids.discard(active.job.job_id)
            self.scale_downs += 1

"""The autoscaler policy family: how many replicas a pool should hold.

Four policies over the same sizing rule — replicas = arrival rate over
(per-replica capacity times the target utilization), floored at the
scenario's minimum:

* ``reactive`` sizes to demand *now*; it pays the spin-up lag on every
  ramp and surge (capacity lands one reconfigure-plus-restore late).
* ``predictive`` sizes to the worst of now and one lead-time ahead on
  the known curve — the lead covers spin-up, so diurnal ramps (and any
  surge longer than the lead) arrive pre-provisioned.
* ``scheduled`` follows a per-hour plan precomputed from the *diurnal*
  curve only: the operationally simple policy that handles every
  daily ramp and is blind to surprise surges by construction.
* ``static`` pins the pool at the full curve's peak (surges included)
  for the whole run — the capacity-split baseline the bench gate
  compares against: it never sheds, and it burns chips all night.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.fleet.serve.pool import ReplicaPool
from repro.units import HOUR

AUTOSCALERS = ("reactive", "predictive", "scheduled", "static")

#: Samples per hour when precomputing a scheduled plan's hourly peaks.
_PLAN_SAMPLES_PER_HOUR = 12


def _replicas_for(qps: float, pool: ReplicaPool, target_utilization: float,
                  min_replicas: int) -> int:
    capacity = pool.replica_qps * target_utilization
    return max(min_replicas, math.ceil(qps / capacity))


def _scheduled_qps(pool: ReplicaPool, now: float) -> float:
    """The current hour's diurnal maximum (surge-blind, by design)."""
    hour_start = math.floor(now / HOUR) * HOUR
    step = HOUR / _PLAN_SAMPLES_PER_HOUR
    return max(pool.traffic.diurnal_qps(hour_start + k * step)
               for k in range(_PLAN_SAMPLES_PER_HOUR + 1))


def desired_replicas(policy: str, pool: ReplicaPool, now: float, *,
                     target_utilization: float, min_replicas: int,
                     lead_seconds: float) -> int:
    """The policy's replica target for `pool` at time `now`."""
    traffic = pool.traffic
    if policy == "reactive":
        qps = traffic.qps_at(now)
    elif policy == "predictive":
        qps = max(traffic.qps_at(now),
                  traffic.qps_at(now + lead_seconds))
    elif policy == "scheduled":
        qps = _scheduled_qps(pool, now)
    elif policy == "static":
        qps = traffic.peak_qps_with_surge
    else:
        raise ConfigurationError(
            f"unknown autoscaler {policy!r}; have {list(AUTOSCALERS)}")
    return _replicas_for(qps, pool, target_utilization, min_replicas)

"""The serving-tier controller: ticks, analytic latency, the report.

The tier runs on a fixed control cadence.  Each tick closes the
interval since the last one — per pool, an M/M/1-style evaluation at
the interval's midpoint arrival rate against the replicas that were
spun up by the interval's end — then lets the autoscaler resize every
pool by submitting or cancelling real scheduler jobs, and leaves the
dispatch to the caller (strict runs dispatch per tick; the fast engine
folds the new replicas into its batch dispatch).

Latency is analytic because the traffic is open-loop at millions of
QPS: per interval, requests see a shifted-exponential response ``T =
L0 + Exp(L0·ρ̂/(1-ρ̂))`` (service time plus M/M/1 queueing delay), so
SLO attainment is a closed form and run-level p50/p99 come from
bisecting the request-weighted mixture CDF over every interval.  When
demand exceeds ready capacity (ρ > 1) the excess is shed and counted
against the SLO — overload never hides inside a finite queue.

Everything the tier reports reconciles with the scheduler's books: a
replica's chip-seconds are its job record's ``busy_seconds`` (banked
by the same segment accounting that feeds the utilization identity),
so :func:`reconciliation_residual` can check the whole chain to float
precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.fleet.config import FleetConfig
from repro.fleet.scheduler import ActiveJob, FleetScheduler
from repro.fleet.serve.autoscaler import AUTOSCALERS, desired_replicas
from repro.fleet.serve.pool import ReplicaPool
from repro.fleet.serve.scenarios import ServeScenario
from repro.fleet.telemetry import FleetTelemetry

#: Version of the serve summary dict's key set (the base fleet summary
#: keeps its own SUMMARY_SCHEMA — serve telemetry is additive, never a
#: reshape of the digest-gated summary).
SERVE_SCHEMA = 1

#: Utilization cap inside the latency model: at or over 1.0 the
#: steady-state queue diverges, so the wait is evaluated at this bound
#: while the diverging excess is shed explicitly.
_RHO_MAX = 0.999

#: Response times past L0 + 60 mean waits carry ~e-60 of the mass;
#: the bisection bracket ends there.
_TAIL_MEANS = 60.0


def _mixture_quantile(samples: list[tuple[float, float, float]],
                      fraction: float) -> float:
    """The `fraction` quantile of a weighted shifted-exponential mix.

    `samples` rows are ``(weight, base, wait)``: `weight` requests saw
    ``T = base + Exp(wait)`` (`wait` 0 means exactly `base`).  The
    mixture CDF is monotone, so the quantile is a bisection.
    """
    if not samples:
        return 0.0
    rows = np.asarray(samples, dtype=np.float64)
    weights, bases, waits = rows[:, 0], rows[:, 1], rows[:, 2]
    total = float(weights.sum())
    if total <= 0:
        return 0.0
    lo = float(bases.min())
    hi = float((bases + np.maximum(waits, 0.0) * _TAIL_MEANS).max())
    safe_waits = np.where(waits > 0, waits, 1.0)

    def cdf(x: float) -> float:
        tail = np.where(x >= bases,
                        np.where(waits > 0,
                                 np.exp(-np.maximum(x - bases, 0.0)
                                        / safe_waits),
                                 0.0),
                        1.0)
        return float(weights @ (1.0 - tail)) / total

    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < fraction:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass
class ServeReport:
    """Serving-tier outcome of one fleet run (rides FleetReport.serve)."""

    scenario: str
    autoscaler: str
    tick_seconds: float
    #: Flat fleet-wide serve metrics (stable keys, SERVE_SCHEMA).
    summary: dict[str, float]
    #: Per-pool metrics, keyed by model name.
    pools: dict[str, dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable serving block."""
        s = self.summary
        lines = [
            f"serving tier: scenario={self.scenario} "
            f"autoscaler={self.autoscaler} "
            f"pools={len(self.pools)} tick={self.tick_seconds:.0f}s",
            f"  requests: {s['requests_total']:.3e} offered, "
            f"{s['requests_served']:.3e} served, "
            f"{s['requests_shed']:.3e} shed",
            f"  SLO: attainment {s['slo_attainment']:.6f}  "
            f"violations {s['slo_violation_fraction']:.6f}  "
            f"p50 {s['p50_latency_seconds'] * 1e3:.3f}ms  "
            f"p99 {s['p99_latency_seconds'] * 1e3:.3f}ms",
            f"  capacity: {s['serving_chip_seconds']:.3e} chip-seconds "
            f"({s['serving_block_seconds']:.3e} block-seconds), "
            f"SLO-attained requests per chip-second "
            f"{s['slo_attainment_per_chip']:.1f}",
            f"  scaling: {s['scale_ups']:.0f} ups, "
            f"{s['scale_downs']:.0f} downs, peak "
            f"{s['replicas_peak']:.0f} replicas, "
            f"{s['replica_interruptions']:.0f} failover interruptions",
        ]
        for name in sorted(self.pools):
            pool = self.pools[name]
            lines.append(
                f"  pool {name}: {pool['replicas_initial']:.0f} -> peak "
                f"{pool['replicas_peak']:.0f} -> "
                f"{pool['replicas_final']:.0f} replicas "
                f"x{pool['replica_chips']:.0f} chips, attainment "
                f"{pool['slo_attainment']:.6f}, p99 "
                f"{pool['p99_latency_seconds'] * 1e3:.3f}ms")
        return "\n".join(lines)


class ServingTier:
    """Owns the pools and drives them on the control cadence."""

    def __init__(self, scenario: ServeScenario, config: FleetConfig,
                 scheduler: FleetScheduler, *, base_job_id: int,
                 autoscaler: str | None = None) -> None:
        self.scenario = scenario
        self.config = config
        self.scheduler = scheduler
        self.autoscaler = autoscaler if autoscaler is not None \
            else config.serve_autoscaler
        if self.autoscaler not in AUTOSCALERS:
            raise ConfigurationError(
                f"unknown autoscaler {self.autoscaler!r}; have "
                f"{list(AUTOSCALERS)}")
        self.pools = [ReplicaPool(model, config.horizon_seconds)
                      for model in scenario.models]
        self._next_id = base_job_id
        self._last_tick: float | None = None
        #: Per-pool accounting: offered/served/shed/in-SLO request
        #: counts and the (weight, base, wait) latency mixture samples.
        self._totals = {pool.traffic.name:
                        {"total": 0.0, "served": 0.0, "shed": 0.0,
                         "in_slo": 0.0}
                        for pool in self.pools}
        self._samples: dict[str, list[tuple[float, float, float]]] = {
            pool.traffic.name: [] for pool in self.pools}

    def _alloc_id(self) -> int:
        job_id = self._next_id
        self._next_id += 1
        return job_id

    def tick_times(self, horizon: float) -> list[float]:
        """Control instants: 0, tick, 2·tick, ..., and the horizon.

        The horizon always closes the last interval so chip-second and
        request accounting cover the whole run.
        """
        times: list[float] = []
        k = 0
        while True:
            t = k * self.scenario.tick_seconds
            if t >= horizon:
                break
            times.append(t)
            k += 1
        times.append(horizon)
        return times

    # -- per-interval accounting -------------------------------------------------

    def _account(self, pool: ReplicaPool, t0: float, t1: float) -> None:
        """Close one pool's interval [t0, t1) analytically."""
        dt = t1 - t0
        rate = pool.traffic.qps_at(0.5 * (t0 + t1))
        arrivals = rate * dt
        if arrivals <= 0:
            return
        totals = self._totals[pool.traffic.name]
        totals["total"] += arrivals
        ready = pool.ready_count(t1)
        if ready == 0:
            # Nothing spun up: every request of the interval is shed
            # (and an SLO miss) — the failover window's worst case.
            totals["shed"] += arrivals
            return
        rho = rate / (ready * pool.replica_qps)
        served = arrivals if rho <= 1.0 else arrivals / rho
        totals["served"] += served
        totals["shed"] += arrivals - served
        rho_hat = min(rho, _RHO_MAX)
        wait = pool.base_latency * rho_hat / (1.0 - rho_hat)
        slo = pool.traffic.slo_seconds
        if slo < pool.base_latency:
            in_slo = 0.0
        elif wait <= 0.0:
            in_slo = served
        else:
            in_slo = served * (1.0 - math.exp(
                -(slo - pool.base_latency) / wait))
        totals["in_slo"] += in_slo
        self._samples[pool.traffic.name].append(
            (served, pool.base_latency, wait))

    # -- the control tick --------------------------------------------------------

    def on_tick(self, now: float) -> list[ActiveJob]:
        """Close the last interval, resize every pool; return new actives.

        The caller owns the dispatch that follows (one per tick on the
        strict tier; folded into the batch on the fast tier), so
        scaling many pools never pays more than one placement sweep.
        """
        if self._last_tick is not None and now > self._last_tick:
            for pool in self.pools:
                self._account(pool, self._last_tick, now)
        new_actives: list[ActiveJob] = []
        obs = self.scheduler.obs

        def submit(job):
            active = self.scheduler._enqueue(job)
            new_actives.append(active)
            return active

        for pool in self.pools:
            desired = desired_replicas(
                self.autoscaler, pool, now,
                target_utilization=self.scenario.target_utilization,
                min_replicas=self.scenario.min_replicas,
                lead_seconds=self.scenario.lead_seconds)
            current = len(pool.replicas)
            if desired > current:
                pool.grow(desired - current, now, self._alloc_id, submit)
                obs.instant("serve_scale_up", now,
                            model=pool.traffic.name, replicas=desired)
            elif desired < current:
                pool.shrink(current - desired, self.scheduler.cancel)
                obs.instant("serve_scale_down", now,
                            model=pool.traffic.name, replicas=desired)
        if self._last_tick is None:
            for pool in self.pools:
                pool.initial_replicas = len(pool.replicas)
        self._last_tick = now
        return new_actives

    def install(self, sim, horizon: float) -> None:
        """Schedule the cadence on a strict-tier simulator.

        Installed after arrivals and outages so a tick at time t sees
        the state after every same-time event (the kernel's
        insertion-order tie-break), and each tick runs one dispatch
        for whatever it submitted or freed.
        """
        def fire(now: float) -> None:
            self.on_tick(now)
            self.scheduler.dispatch()

        for t in self.tick_times(horizon):
            sim.schedule_at(t, lambda now=t: fire(now))

    # -- the report --------------------------------------------------------------

    def _pool_report(self, pool: ReplicaPool,
                     telemetry: FleetTelemetry) -> dict[str, float]:
        name = pool.traffic.name
        totals = self._totals[name]
        samples = self._samples[name]
        busy = sum(telemetry.records[job_id].busy_seconds
                   for job_id in sorted(pool.job_ids))
        interruptions = sum(telemetry.records[job_id].interruptions
                            for job_id in sorted(pool.job_ids))
        total, in_slo = totals["total"], totals["in_slo"]
        chip_seconds = busy * pool.chips
        return {
            "replica_chips": float(pool.chips),
            "replica_blocks": float(pool.blocks),
            "replica_qps": pool.replica_qps,
            "base_latency_seconds": pool.base_latency,
            "slo_seconds": pool.traffic.slo_seconds,
            "requests_total": total,
            "requests_served": totals["served"],
            "requests_shed": totals["shed"],
            "requests_in_slo": in_slo,
            "slo_attainment": in_slo / total if total > 0 else 0.0,
            "p50_latency_seconds": _mixture_quantile(samples, 0.50),
            "p99_latency_seconds": _mixture_quantile(samples, 0.99),
            "chip_seconds": chip_seconds,
            "block_seconds": busy * pool.blocks,
            "slo_attainment_per_chip":
                in_slo / chip_seconds if chip_seconds > 0 else 0.0,
            "replicas_initial": float(pool.initial_replicas),
            "replicas_peak": float(pool.peak_replicas),
            "replicas_final": float(len(pool.replicas)),
            "scale_ups": float(pool.scale_ups),
            "scale_downs": float(pool.scale_downs),
            "interruptions": float(interruptions),
        }

    def report(self, telemetry: FleetTelemetry) -> ServeReport:
        """Build the run's serve report after the scheduler finalized."""
        pools = {pool.traffic.name: self._pool_report(pool, telemetry)
                 for pool in self.pools}
        rows = list(pools.values())
        total = sum(r["requests_total"] for r in rows)
        served = sum(r["requests_served"] for r in rows)
        in_slo = sum(r["requests_in_slo"] for r in rows)
        chip_seconds = sum(r["chip_seconds"] for r in rows)
        merged = [sample for pool in self.pools
                  for sample in self._samples[pool.traffic.name]]
        summary = {
            "schema_version": float(SERVE_SCHEMA),
            "requests_total": total,
            "requests_served": served,
            "requests_shed": sum(r["requests_shed"] for r in rows),
            "requests_in_slo": in_slo,
            "slo_attainment": in_slo / total if total > 0 else 0.0,
            "slo_violation_fraction":
                1.0 - in_slo / total if total > 0 else 0.0,
            "p50_latency_seconds": _mixture_quantile(merged, 0.50),
            "p99_latency_seconds": _mixture_quantile(merged, 0.99),
            "serving_chip_seconds": chip_seconds,
            "serving_block_seconds":
                sum(r["block_seconds"] for r in rows),
            "slo_attainment_per_chip":
                in_slo / chip_seconds if chip_seconds > 0 else 0.0,
            "scale_ups": sum(r["scale_ups"] for r in rows),
            "scale_downs": sum(r["scale_downs"] for r in rows),
            "replicas_peak": sum(r["replicas_peak"] for r in rows),
            "replica_interruptions":
                sum(r["interruptions"] for r in rows),
        }
        return ServeReport(
            scenario=self.scenario.name, autoscaler=self.autoscaler,
            tick_seconds=self.scenario.tick_seconds,
            summary=summary, pools=pools)


def reconciliation_residual(report) -> float:
    """Largest accounting residual tying serve telemetry to the identity.

    Two checks, both normalized to fleet capacity so the bound is a
    dimensionless fraction:

    * the utilization identity itself — ``utilization = goodput +
      replay + restore + checkpoint + reconfig`` from the summary;
    * the busy ledger — per-job ``busy_seconds`` (the serve tier's
      chip-second source) re-summed over every record must reproduce
      the summary's ``utilization``.

    Serve chip-seconds are a pure re-grouping of the same records, so
    these two residuals bound the serving telemetry's drift from the
    identity.  Both tiers hold this at or under 1e-9.
    """
    summary = report.summary
    identity = abs(summary["utilization"] - (
        summary["goodput"] + summary["replay_fraction"] +
        summary["restore_fraction"] + summary["checkpoint_fraction"] +
        summary["reconfig_fraction"]))
    capacity = report.config.total_blocks * \
        report.config.horizon_seconds
    busy = sum(record.busy_seconds * record.blocks
               for record in report.job_records)
    ledger = abs(busy / capacity - summary["utilization"]) \
        if capacity > 0 else 0.0
    return max(identity, ledger)

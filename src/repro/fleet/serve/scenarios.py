"""Named serving scenarios: which models a fleet serves, and how.

A :class:`ServeScenario` bundles the model traffic curves with the
control-loop knobs (tick cadence, utilization target, autoscaler lead,
replica floor).  Like deployment schedules
(:data:`repro.fleet.scenario.SCHEDULES`), scenarios register by name
and materialize against a config at use time, so a preset can say
``serve_scenario="surge"`` and every tier (strict, fast, CLI, sweeps)
resolves the same curves from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.fleet.config import FleetConfig
from repro.fleet.serve.traffic import ModelTraffic, SurgeWindow
from repro.units import DAY, HOUR


@dataclass(frozen=True)
class ServeScenario:
    """One named serving setup, materialized against a config.

    Attributes:
        name: registry key (and report label).
        models: traffic curves, one per served model.
        tick_seconds: control-loop cadence — accounting closes and the
            autoscaler acts once per tick.
        target_utilization: the autoscalers' sizing headroom; pools are
            sized so spun-up replicas sit at this utilization.
        lead_seconds: how far ahead the predictive policy looks.
        min_replicas: per-pool floor no policy scales below.
    """

    name: str
    models: tuple[ModelTraffic, ...]
    tick_seconds: float = 300.0
    target_utilization: float = 0.6
    lead_seconds: float = 1800.0
    min_replicas: int = 1

    def __post_init__(self) -> None:
        if not self.models:
            raise ConfigurationError("a serve scenario needs >= 1 model")
        if self.tick_seconds <= 0:
            raise ConfigurationError("tick_seconds must be > 0")
        if not 0.0 < self.target_utilization < 1.0:
            raise ConfigurationError(
                "target_utilization must be in (0, 1)")
        if self.lead_seconds < 0:
            raise ConfigurationError("lead_seconds must be >= 0")
        if self.min_replicas < 1:
            raise ConfigurationError("min_replicas must be >= 1")


def _steady(config: FleetConfig) -> ServeScenario:
    """Two diurnal pools, no surges: the calm-week baseline."""
    return ServeScenario(
        name="steady",
        models=(
            ModelTraffic(name="ads-dlrm", peak_qps=6.0e7,
                         replica_chips=16, slo_seconds=1e-3),
            ModelTraffic(name="search-ranker", peak_qps=1.5e7,
                         replica_chips=32, slo_seconds=2e-3,
                         base_fraction=0.4,
                         phase_seconds=0.5 * DAY),
        ))


def _surge(config: FleetConfig) -> ServeScenario:
    """A 3x launch spike landing inside the deploy-week drain.

    The ads pool's surge opens exactly when `deploy_week` pulls the
    highest-id pod (1/7 into the horizon) and holds for 8 hours: the
    autoscaler must triple the pool while the fleet is down a pod.
    The second model keeps its ordinary counter-phased diurnal load so
    the surge competes for blocks instead of landing on an idle fleet.
    """
    surge_start = config.horizon_seconds / 7
    return ServeScenario(
        name="surge",
        models=(
            ModelTraffic(name="ads-dlrm", peak_qps=6.0e7,
                         replica_chips=16, slo_seconds=1e-3,
                         surges=(SurgeWindow(start=surge_start,
                                             end=surge_start + 8 * HOUR,
                                             multiplier=3.0),)),
            ModelTraffic(name="search-ranker", peak_qps=1.5e7,
                         replica_chips=32, slo_seconds=2e-3,
                         base_fraction=0.4,
                         phase_seconds=0.5 * DAY),
        ))


SCENARIOS: dict[str, Callable[[FleetConfig], ServeScenario]] = {
    "steady": _steady,
    "surge": _surge,
}


def scenario_names() -> list[str]:
    """Registered serve-scenario names, sorted."""
    return sorted(SCENARIOS)


def scenario_for(name: str, config: FleetConfig) -> ServeScenario:
    """Materialize a named serve scenario against one config."""
    if name not in SCENARIOS:
        raise ConfigurationError(
            f"unknown serve scenario {name!r}; have {scenario_names()}")
    return SCENARIOS[name](config)

"""Fleet simulator: a multi-pod TPU v4 cluster as one discrete-event run.

The operational layer above single-machine scheduling: job streams
sampled from the measured Table 2 slice mix (plus Section 3.1 serving
residencies), a fleet-wide priority scheduler with preemption, block
failures and repairs replayed identically across placement policies,
checkpoint-restart accounting, and an online serving tier
(:mod:`repro.fleet.serve`) that autoscales per-model replica pools
against diurnal request traffic — producing the goodput, utilization,
queue-wait, and SLO telemetry behind the paper's Section 2.5/Figure 4
operational claims.

Runs execute under one of two determinism tiers
(``FleetConfig.determinism``): ``"strict"`` (default) replays
byte-identically and is digest-gated; ``"fast"`` delegates to
:mod:`repro.fleet.engine_fast`, which batches same-timestamp events
over an array-of-struct job table — self-deterministic per seed and
gated for statistical equivalence against strict, but not
byte-identical to it.

The package facade (``__all__`` below) is the supported public API —
the config, the simulator/report surface, presets, the comparison
helpers, and the serving-tier entry points.  Deeper names
(schedulers, fabrics, trace/obs codecs, the fast engine) remain
importable from their defining modules; they are implementation
surface, stable only module-by-module.

Quickstart::

    from repro.fleet import compare_policies, preset_config
    reports = compare_policies(preset_config("small"), seed=0)
    print(reports["ocs"].render())
    assert reports["ocs"].summary["goodput"] > \
        reports["static"].summary["goodput"]
"""

from repro.fleet.config import FleetConfig
from repro.fleet.cluster import FleetState, Pod
from repro.fleet.fabric import PodFabric, ReconfigPlan
from repro.fleet.failures import (BlockOutage, DrainWindow,
                                  apply_spare_repairs, build_failure_trace,
                                  drained_block_seconds, overlay_windows,
                                  spare_repair_count)
from repro.fleet.machine import MachineFabric, MachinePlan
from repro.fleet.obs import (DispatchProfiler, MetricsSampler, ObsRecorder,
                             dumps_chrome_trace, dumps_obs, load_obs,
                             loads_obs, render_report, save_obs,
                             validate_chrome_trace)
from repro.fleet.engine_fast import (FastMachineLedger, FastScheduler,
                                     JobTable, PlanPrice, plan_price,
                                     run_fast)
from repro.fleet.presets import PRESETS, preset_config, preset_names
from repro.fleet.scenario import (DeploymentSchedule, SCHEDULES,
                                  compare_deployment, incremental_rollout,
                                  rolling_maintenance, run_scenario,
                                  schedule_for, schedule_names)
from repro.fleet.scheduler import ActiveJob, FleetScheduler
from repro.fleet.simulator import (FleetReport, FleetSimulator,
                                   compare_cross_pod, compare_policies,
                                   compare_preemption, compare_strategies,
                                   run_fleet)
from repro.fleet.sweep import SweepResult, run_sweep, sweep_mean
from repro.fleet.telemetry import FleetTelemetry, JobRecord
from repro.fleet.trace import (FleetTrace, TRACE_VERSION, dumps_trace,
                               load_trace, loads_trace, record_trace,
                               save_trace, trace_of, validate_trace)
from repro.fleet.workload import (FleetJob, TraceWorkload, generate_jobs,
                                  hostile_background_mix, model_type_mix,
                                  serving_shape, truncated_slice_mix)
# Imported last: the serve package reaches back into scheduler/workload
# (and its compare helper lazily into the simulator).
from repro.fleet.serve import (AUTOSCALERS, ModelTraffic, SERVE_SCHEMA,
                               ReplicaPool, SCENARIOS, ServeReport,
                               ServeScenario, ServingTier, SurgeWindow,
                               compare_autoscalers,
                               reconciliation_residual, scenario_for,
                               scenario_names)

#: The curated public API: one config type, the simulator and its
#: report, presets/scenarios by name, the run/compare entry points, and
#: the serving tier's surface.  Everything else in the package is
#: reachable by deep import but deliberately not re-exported here.
__all__ = [
    # configuration
    "FleetConfig",
    # running and reporting
    "FleetSimulator", "FleetReport", "run_fleet",
    # presets and named overlays
    "PRESETS", "preset_config", "preset_names",
    "SCHEDULES", "schedule_for", "schedule_names",
    # comparison entry points (the paper's A/Bs)
    "compare_policies", "compare_strategies", "compare_preemption",
    "compare_cross_pod", "compare_deployment", "compare_autoscalers",
    # multi-seed ensembles
    "run_sweep", "sweep_mean", "SweepResult",
    # record/replay
    "record_trace", "save_trace", "load_trace", "trace_of",
    # the serving tier
    "AUTOSCALERS", "SCENARIOS", "SERVE_SCHEMA", "ModelTraffic",
    "ReplicaPool", "ServeReport", "ServeScenario", "ServingTier",
    "SurgeWindow", "reconciliation_residual", "scenario_for",
    "scenario_names",
]

"""Fleet simulator: a multi-pod TPU v4 cluster as one discrete-event run.

The operational layer above single-machine scheduling: job streams
sampled from the measured Table 2 slice mix (plus Section 3.1 serving
residencies), a fleet-wide priority scheduler with preemption, block
failures and repairs replayed identically across placement policies,
and checkpoint-restart accounting — producing the goodput, utilization,
and queue-wait telemetry behind the paper's Section 2.5/Figure 4
operational claims.

Runs execute under one of two determinism tiers
(``FleetConfig.determinism``): ``"strict"`` (default) replays
byte-identically and is digest-gated; ``"fast"`` delegates to
:mod:`repro.fleet.engine_fast`, which batches same-timestamp events
over an array-of-struct job table — self-deterministic per seed and
gated for statistical equivalence against strict, but not
byte-identical to it.

Quickstart::

    from repro.fleet import compare_policies, preset_config
    reports = compare_policies(preset_config("small"), seed=0)
    print(reports["ocs"].render())
    assert reports["ocs"].summary["goodput"] > \
        reports["static"].summary["goodput"]
"""

from repro.fleet.config import FleetConfig
from repro.fleet.cluster import FleetState, Pod
from repro.fleet.fabric import PodFabric, ReconfigPlan
from repro.fleet.failures import (BlockOutage, DrainWindow,
                                  apply_spare_repairs, build_failure_trace,
                                  drained_block_seconds, overlay_windows,
                                  spare_repair_count)
from repro.fleet.machine import MachineFabric, MachinePlan
from repro.fleet.obs import (DispatchProfiler, MetricsSampler, ObsRecorder,
                             dumps_chrome_trace, dumps_obs, load_obs,
                             loads_obs, render_report, save_obs,
                             validate_chrome_trace)
from repro.fleet.engine_fast import (FastMachineLedger, FastScheduler,
                                     JobTable, PlanPrice, plan_price,
                                     run_fast)
from repro.fleet.presets import PRESETS, preset_config, preset_names
from repro.fleet.scenario import (DeploymentSchedule, SCHEDULES,
                                  compare_deployment, incremental_rollout,
                                  rolling_maintenance, run_scenario,
                                  schedule_for, schedule_names)
from repro.fleet.scheduler import ActiveJob, FleetScheduler
from repro.fleet.simulator import (FleetReport, FleetSimulator,
                                   compare_cross_pod, compare_policies,
                                   compare_preemption, compare_strategies,
                                   run_fleet)
from repro.fleet.sweep import SweepResult, run_sweep, sweep_mean
from repro.fleet.telemetry import FleetTelemetry, JobRecord
from repro.fleet.trace import (FleetTrace, TRACE_VERSION, dumps_trace,
                               load_trace, loads_trace, record_trace,
                               save_trace, trace_of, validate_trace)
from repro.fleet.workload import (FleetJob, TraceWorkload, generate_jobs,
                                  hostile_background_mix, model_type_mix,
                                  serving_shape, truncated_slice_mix)

__all__ = [
    "FleetConfig", "FleetState", "Pod",
    "PodFabric", "ReconfigPlan",
    "MachineFabric", "MachinePlan",
    "DispatchProfiler", "MetricsSampler", "ObsRecorder",
    "dumps_chrome_trace", "dumps_obs", "load_obs", "loads_obs",
    "render_report", "save_obs", "validate_chrome_trace",
    "BlockOutage", "DrainWindow", "apply_spare_repairs",
    "build_failure_trace", "drained_block_seconds", "overlay_windows",
    "spare_repair_count",
    "PRESETS", "preset_config", "preset_names",
    "DeploymentSchedule", "SCHEDULES", "compare_deployment",
    "incremental_rollout", "rolling_maintenance", "run_scenario",
    "schedule_for", "schedule_names",
    "FastMachineLedger", "FastScheduler", "JobTable", "PlanPrice",
    "plan_price", "run_fast",
    "ActiveJob", "FleetScheduler",
    "FleetReport", "FleetSimulator", "compare_cross_pod",
    "compare_policies", "compare_preemption", "compare_strategies",
    "run_fleet",
    "SweepResult", "run_sweep", "sweep_mean",
    "FleetTelemetry", "JobRecord",
    "FleetTrace", "TRACE_VERSION", "dumps_trace", "load_trace",
    "loads_trace", "record_trace", "save_trace", "trace_of",
    "validate_trace",
    "FleetJob", "TraceWorkload", "generate_jobs",
    "hostile_background_mix", "model_type_mix", "serving_shape",
    "truncated_slice_mix",
]

"""Spare-port repair and link-failure recovery on the OCS.

The Palomar keeps 8 spare ports "for link testing and repairs"
(Section 2.2), and the OCS "acts like a plugboard to skip failed units".
This module models both maintenance flows:

* a block's fiber or transceiver fails -> its circuit moves to a spare
  port pair without disturbing the rest of the switch;
* a whole block fails -> the scheduler (not this module) simply picks a
  different block; here we verify the switch-level bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OCSError
from repro.ocs.switch import OpticalCircuitSwitch


@dataclass
class RepairableSwitch:
    """An OCS plus spare-port management.

    Spare ports live above `usable_ports`; a repair remaps one side of a
    live circuit onto a spare, freeing the suspect port for testing.
    """

    switch: OpticalCircuitSwitch = field(
        default_factory=OpticalCircuitSwitch)

    def __post_init__(self) -> None:
        self._spares_free = list(range(
            self.switch.usable_ports,
            self.switch.usable_ports + self.switch.spare_ports))
        self._under_test: dict[int, int] = {}  # failed port -> spare used

    @property
    def spares_available(self) -> int:
        """Spare ports still unassigned."""
        return len(self._spares_free)

    @property
    def ports_under_test(self) -> list[int]:
        """Production ports currently quarantined."""
        return sorted(self._under_test)

    def fail_port(self, port: int) -> int:
        """Move `port`'s circuit onto a spare; returns the spare used.

        The peer keeps its port: one mirror move, milliseconds, no other
        circuit disturbed.
        """
        if not self._spares_free:
            raise OCSError(f"{self.switch.name}: no spare ports left")
        peer = self.switch.peer_of(port)
        if peer is None:
            raise OCSError(f"port {port} has no circuit to repair")
        spare = self._spares_free.pop(0)
        self.switch.disconnect(port)
        # Spares are above the usable range; bypass the range check the
        # way the management plane does, by direct mirror programming.
        self.switch._peer[spare] = peer
        self.switch._peer[peer] = spare
        self.switch.reconfigurations += 1
        self._under_test[port] = spare
        return spare

    def repair_port(self, port: int) -> None:
        """Return a tested-good port to service and free its spare."""
        if port not in self._under_test:
            raise OCSError(f"port {port} is not under test")
        spare = self._under_test.pop(port)
        peer = self.switch._peer.pop(spare, None)
        if peer is not None:
            del self.switch._peer[peer]
            self.switch.connect(port, peer)
        self._spares_free.append(spare)
        self._spares_free.sort()

    def circuit_count(self) -> int:
        """Live circuits including ones running on spares."""
        return len(self.switch._peer) // 2

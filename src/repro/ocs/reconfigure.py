"""Realize a slice topology by programming the OCS fabric.

A slice's chip-level torus (or twisted torus) decomposes into:

* electrical links — the mesh inside each 4x4x4 block (never change);
* optical links — every inter-block and wraparound link, each one an OCS
  circuit on the switch serving its (dimension, face position).

Because the paper's twists skew by multiples of 4, all 16 chip links of a
block face always target the *same* destination block, and the face
position is preserved end-to-end — which is exactly why twisting is "mostly
reprogramming of routing in the OCS" (Section 2.8) and why each of the 48
switches can be programmed independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import OCSError, TopologyError
from repro.ocs.fabric import FACE_SIDE, OCSFabric
from repro.topology.base import Topology
from repro.topology.builder import build_topology, is_block_multiple
from repro.topology.coords import Coord

BlockCoord = tuple[int, int, int]


def block_of(chip: Coord) -> BlockCoord:
    """The block-grid coordinate containing a chip."""
    return (chip[0] // FACE_SIDE, chip[1] // FACE_SIDE, chip[2] // FACE_SIDE)


def is_electrical(u: Coord, v: Coord) -> bool:
    """True for links carried by the in-rack electrical mesh."""
    if block_of(u) != block_of(v):
        return False
    return sum(abs(a - b) for a, b in zip(u, v)) == 1


@dataclass
class Circuit:
    """One programmed OCS circuit realizing one chip-level optical link."""

    dim: int
    face_index: int
    low_block: int   # physical block id whose '+' face feeds the circuit
    high_block: int  # physical block id whose '-' face receives it
    chip_link: tuple[Coord, Coord]


@dataclass
class SliceWiring:
    """The complete wiring record for one realized slice."""

    shape: tuple[int, int, int]
    twisted: bool
    placement: dict[BlockCoord, int]
    topology: Topology
    circuits: list[Circuit] = field(default_factory=list)
    num_electrical_links: int = 0

    @property
    def num_optical_links(self) -> int:
        """Chip-level links carried by OCS circuits."""
        return len(self.circuits)

    def verify(self) -> None:
        """Cross-check the wiring against the slice topology."""
        expected_total = self.topology.num_links
        actual = self.num_optical_links + self.num_electrical_links
        if actual != expected_total:
            raise OCSError(
                f"wiring covers {actual} links but topology has "
                f"{expected_total}")


def default_placement(shape: tuple[int, int, int]) -> dict[BlockCoord, int]:
    """Identity placement: block-grid coords to row-major physical ids."""
    blocks_per_dim = tuple(d // FACE_SIDE for d in shape)
    placement: dict[BlockCoord, int] = {}
    next_id = 0
    for bx in range(blocks_per_dim[0]):
        for by in range(blocks_per_dim[1]):
            for bz in range(blocks_per_dim[2]):
                placement[(bx, by, bz)] = next_id
                next_id += 1
    return placement


def _face_position(chip: Coord, dim: int) -> int:
    """Index 0..15 of a chip's link on its block face for `dim`."""
    others = [d for d in range(3) if d != dim]
    return (chip[others[0]] % FACE_SIDE) * FACE_SIDE + (chip[others[1]] % FACE_SIDE)


def realize_slice(fabric: OCSFabric, shape: tuple[int, int, int], *,
                  twisted: bool = False,
                  placement: dict[BlockCoord, int] | None = None) -> SliceWiring:
    """Program `fabric` with every circuit needed for the slice.

    Args:
        fabric: the machine's OCS fabric; circuits are created on it.
        shape: slice shape in chips.  Sub-block (mesh) shapes yield a wiring
            with zero circuits — they live entirely on electrical links.
        twisted: request the twisted-torus variant.
        placement: block-grid coordinate -> physical block id.  Defaults to
            the identity placement.  This is the scheduler's degree of
            freedom: ANY healthy blocks can host the slice (Section 2.5).

    Returns the :class:`SliceWiring`, already verified.
    """
    topology = build_topology(shape, twisted=twisted)
    if not is_block_multiple(shape):
        wiring = SliceWiring(shape=shape, twisted=twisted, placement={},
                             topology=topology,
                             num_electrical_links=topology.num_links)
        wiring.verify()
        return wiring

    if placement is None:
        placement = default_placement(shape)
    blocks_needed = (shape[0] // FACE_SIDE) * (shape[1] // FACE_SIDE) * \
        (shape[2] // FACE_SIDE)
    if len(placement) != blocks_needed:
        raise OCSError(
            f"placement covers {len(placement)} blocks, slice needs "
            f"{blocks_needed}")
    if len(set(placement.values())) != blocks_needed:
        raise OCSError("placement maps two block coords to one physical block")

    wiring = SliceWiring(shape=shape, twisted=twisted, placement=dict(placement),
                         topology=topology)
    for u, v, mult in topology.edges():
        if mult != 1:
            raise TopologyError(
                f"slice link ({u}, {v}) has multiplicity {mult}; block-"
                f"multiple shapes never produce parallel links")
        if is_electrical(u, v):
            wiring.num_electrical_links += 1
            continue
        dim = topology.edge_dim(u, v)
        if u[dim] % FACE_SIDE == FACE_SIDE - 1 and v[dim] % FACE_SIDE == 0:
            plus, minus = u, v
        elif v[dim] % FACE_SIDE == FACE_SIDE - 1 and u[dim] % FACE_SIDE == 0:
            plus, minus = v, u
        else:
            raise OCSError(
                f"optical link ({u}, {v}) does not join a '+' face to a "
                f"'-' face in dim {dim}")
        face_index = _face_position(plus, dim)
        if face_index != _face_position(minus, dim):
            raise OCSError(
                f"optical link ({u}, {v}) changes face position; twists "
                f"must skew by multiples of {FACE_SIDE}")
        low_id = placement[block_of(plus)]
        high_id = placement[block_of(minus)]
        fabric.connect_blocks(dim, face_index, low_id, high_id)
        wiring.circuits.append(Circuit(dim=dim, face_index=face_index,
                                       low_block=low_id, high_block=high_id,
                                       chip_link=(u, v)))
    wiring.verify()
    return wiring


def release_slice(fabric: OCSFabric, wiring: SliceWiring) -> None:
    """Tear down every circuit a slice holds on the fabric."""
    for circuit in wiring.circuits:
        switch = fabric.switch_for(circuit.dim, circuit.face_index)
        switch.disconnect(fabric.port_for(circuit.low_block, "+"))
    wiring.circuits.clear()


# -- block-granularity wiring (the fleet scheduler's view) --------------------
#
# Because the paper's twists skew by multiples of 4, all FACE_SIDE^2 chip
# links of one block face travel to the same destination block, so a
# slice's optical wiring is fully described at *block* granularity: one
# (dim, low_block, high_block) adjacency stands for FACE_LINKS parallel
# chip circuits, one per face position, each on its own switch.

BlockAdjacency = tuple[int, int, int]  # (dim, low_block, high_block)

#: An adjacency over virtual grid *slots* rather than physical blocks:
#: (dim, low_slot, high_slot).  Who occupies a slot — a block of one pod,
#: or of another pod reached over the machine trunk layer — is the
#: caller's degree of freedom.
SlotAdjacency = tuple[int, int, int]


@lru_cache(maxsize=None)
def _grid_adjacency_walk(grid: tuple[int, int, int]
                         ) -> tuple[SlotAdjacency, ...]:
    a, b, c = grid

    def at(i: int, j: int, k: int) -> int:
        return (i * b + j) * c + k

    adjacencies: list[SlotAdjacency] = []
    for i in range(a):
        for j in range(b):
            for k in range(c):
                low = at(i, j, k)
                adjacencies.append((0, low, at((i + 1) % a, j, k)))
                adjacencies.append((1, low, at(i, (j + 1) % b, k)))
                adjacencies.append((2, low, at(i, j, (k + 1) % c)))
    return tuple(adjacencies)


def grid_adjacency_indices(grid: tuple[int, int, int]
                           ) -> list[SlotAdjacency]:
    """Wraparound torus adjacencies of a block grid, in slot indices.

    Slots are row-major grid positions.  Every slot contributes exactly
    one "+"-face adjacency per dimension (its torus neighbor, wrapping),
    so a grid of n slots always yields 3*n adjacencies.  This is the
    layout walk shared by per-pod wiring (:func:`block_torus_adjacencies`)
    and the machine-level trunk classification in
    :mod:`repro.fleet.machine`, which maps slots onto (pod, block) pairs
    and splits the same adjacencies into intra-pod and cross-pod sets.

    The walk is memoized per grid (the handful of legal slice grids
    recur thousands of times over a fleet run); callers get a fresh
    list copy so the cache can never be mutated through a result.
    """
    return list(_grid_adjacency_walk(grid))


def block_torus_adjacencies(grid: tuple[int, int, int],
                            blocks: list[int]) -> list[BlockAdjacency]:
    """Block-level wraparound torus wiring over `blocks` laid out as `grid`.

    `blocks` are physical block ids assigned row-major to the virtual
    block grid — the scheduler's degree of freedom (Section 2.5: any
    healthy blocks, anywhere).  Every block contributes exactly one
    "+"-face adjacency per dimension (its torus neighbor, wrapping), so
    a slice of n blocks always needs 3*n adjacencies = 48*n chip
    circuits.  A dimension of extent 1 wraps a block onto itself, which
    is a legal circuit (the single-block wraparound of Figure 1).
    """
    a, b, c = grid
    if a * b * c != len(blocks):
        raise OCSError(
            f"grid {grid} does not cover {len(blocks)} blocks")
    return [(dim, blocks[low], blocks[high])
            for dim, low, high in grid_adjacency_indices(grid)]


def program_adjacencies(fabric: OCSFabric,
                        adjacencies: list[BlockAdjacency]) -> int:
    """Create the chip circuits of each block adjacency; returns circuits."""
    for dim, low, high in adjacencies:
        for face_index in range(FACE_SIDE * FACE_SIDE):
            fabric.connect_blocks(dim, face_index, low, high)
    return len(adjacencies) * FACE_SIDE * FACE_SIDE


def teardown_adjacencies(fabric: OCSFabric,
                         adjacencies: list[BlockAdjacency]) -> int:
    """Disconnect the chip circuits of each block adjacency; returns circuits."""
    for dim, low, _ in adjacencies:
        port = fabric.port_for(low, "+")
        for face_index in range(FACE_SIDE * FACE_SIDE):
            fabric.switch_for(dim, face_index).disconnect(port)
    return len(adjacencies) * FACE_SIDE * FACE_SIDE

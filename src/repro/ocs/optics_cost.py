"""Cost and power accounting for the optical fabric (Section 2.10).

The paper reports that OCSes *plus all underlying optical components*
(optics modules, fiber, OCS infrastructure) come to under 5% of TPU v4
supercomputer capital cost and under 3% of system power.  Google does not
publish absolute prices, so the defaults below are public-ballpark
estimates (datacenter 400G-class transceiver and commercial MEMS OCS
pricing, TPU-class accelerator system cost); what we *reproduce* is the
paper's claim that the optics fraction lands under the 5%/3% ceilings.
All parameters are explicit so users can plug in their own quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ocs.fabric import OCSFabric


@dataclass(frozen=True)
class OpticsCostModel:
    """Unit costs/powers for the optical fabric and the host system."""

    # --- optics -------------------------------------------------------------
    ocs_cost: float = 60_000.0            # $ per 136-port MEMS switch
    transceiver_cost: float = 400.0       # $ per optical module (one fiber end)
    fiber_cost: float = 60.0              # $ per installed fiber run
    ocs_power: float = 50.0               # W to hold MEMS mirrors + control
    transceiver_power: float = 3.5        # W per active optical module
    # --- the rest of the machine ---------------------------------------------
    system_cost_per_chip: float = 30_000.0  # $ per deployed chip (chip+host+rack share)
    system_power_per_chip: float = 290.0    # W per chip incl. host/cooling share


def default_cost_model() -> OpticsCostModel:
    """The documented default parameterization."""
    return OpticsCostModel()


@dataclass
class OpticsBill:
    """Computed totals for one machine."""

    num_chips: int
    switches: int
    fibers: int
    transceivers: int
    optics_cost: float
    system_cost: float
    optics_power: float
    system_power: float

    @property
    def cost_fraction(self) -> float:
        """Optics share of total machine capital cost."""
        return self.optics_cost / (self.optics_cost + self.system_cost)

    @property
    def power_fraction(self) -> float:
        """Optics share of total machine power."""
        return self.optics_power / (self.optics_power + self.system_power)

    def meets_paper_claims(self) -> bool:
        """Section 2.10: <5% of capital cost and <3% of power."""
        return self.cost_fraction < 0.05 and self.power_fraction < 0.03


def optics_bill(fabric: OCSFabric, *, chips_per_block: int = 64,
                model: OpticsCostModel | None = None) -> OpticsBill:
    """Price the optical fabric of a machine built around `fabric`."""
    if model is None:
        model = default_cost_model()
    budget = fabric.optical_link_budget()
    num_chips = fabric.num_blocks * chips_per_block
    optics_cost = (budget["switches"] * model.ocs_cost
                   + budget["transceiver_ends"] * model.transceiver_cost
                   + budget["fibers"] * model.fiber_cost)
    optics_power = (budget["switches"] * model.ocs_power
                    + budget["transceiver_ends"] * model.transceiver_power)
    return OpticsBill(
        num_chips=num_chips,
        switches=budget["switches"],
        fibers=budget["fibers"],
        transceivers=budget["transceiver_ends"],
        optics_cost=optics_cost,
        system_cost=num_chips * model.system_cost_per_chip,
        optics_power=optics_power,
        system_power=num_chips * model.system_power_per_chip,
    )

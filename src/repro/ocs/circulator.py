"""Circulator accounting.

Optical circulators let one fiber carry light in both directions, so a
bidirectional link consumes *one* OCS port per switch traversal instead of
two, "halving the number of required ports and cables" (Section 2.1).

These helpers quantify that saving; the fabric model always assumes
circulators (as deployed).
"""

from __future__ import annotations

from repro.errors import OCSError


def fibers_required(num_links: int, *, with_circulators: bool = True) -> int:
    """Fibers needed to carry `num_links` bidirectional links.

    >>> fibers_required(96), fibers_required(96, with_circulators=False)
    (96, 192)
    """
    if num_links < 0:
        raise OCSError(f"link count must be non-negative, got {num_links}")
    return num_links if with_circulators else 2 * num_links


def ports_required(num_links: int, *, with_circulators: bool = True) -> int:
    """OCS ports consumed when `num_links` bidirectional links transit a switch.

    Each fiber terminates on one port; each link transits the switch once
    (entering on the source-side fiber's port and leaving on the
    destination-side fiber's port), so a link costs 2 ports with
    circulators and 4 without.

    >>> ports_required(64), ports_required(64, with_circulators=False)
    (128, 256)
    """
    return 2 * fibers_required(num_links, with_circulators=with_circulators)

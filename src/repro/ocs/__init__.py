"""Optical circuit switching substrate (paper Section 2).

Models the Google Palomar OCS (3D MEMS mirrors, 136 ports, circulators for
bidirectional fibers), the 48-switch fabric that joins 64 electrically-
cabled 4x4x4 blocks into a 4096-chip machine (Figure 1), slice
realization/reconfiguration, and the optics cost/power accounting
(Section 2.10).
"""

from repro.ocs.switch import OpticalCircuitSwitch, PALOMAR_PORTS, PALOMAR_SPARE_PORTS
from repro.ocs.circulator import ports_required, fibers_required
from repro.ocs.fabric import OCSFabric, FACE_LINKS, NUM_OCS
from repro.ocs.reconfigure import SliceWiring, realize_slice, release_slice
from repro.ocs.optics_cost import (OpticsBill, OpticsCostModel,
                                   default_cost_model, optics_bill)
from repro.ocs.wavelength import (WDMConfig, lambdas_for_target,
                                  upgrade_study)

__all__ = [
    "WDMConfig",
    "lambdas_for_target",
    "upgrade_study",
    "OpticalCircuitSwitch",
    "PALOMAR_PORTS",
    "PALOMAR_SPARE_PORTS",
    "ports_required",
    "fibers_required",
    "OCSFabric",
    "FACE_LINKS",
    "NUM_OCS",
    "SliceWiring",
    "realize_slice",
    "release_slice",
    "OpticsBill",
    "OpticsCostModel",
    "default_cost_model",
    "optics_bill",
]

"""The Palomar optical circuit switch.

A MEMS-mirror OCS realizes a partial matching over its ports: light entering
one port is reflected out of exactly one other port, and the mapping is
symmetric (the paper: "all inputs can be connected to all outputs, but the
connections must be 1:1").  Because circulators run both directions through
one fiber, one connected port pair carries a full bidirectional link.

The production Palomar switch is 136x136: 128 usable ports plus 8 spares
kept for link testing and repairs (paper Section 2.2).  Reconfiguration is
a mirror move, taking milliseconds.
"""

from __future__ import annotations

from repro.errors import OCSError

PALOMAR_PORTS = 136
PALOMAR_SPARE_PORTS = 8
SWITCH_TIME_SECONDS = 10e-3  # "switch in milliseconds"


class OpticalCircuitSwitch:
    """A single OCS: a reconfigurable 1:1 matching over optical ports."""

    def __init__(self, name: str = "ocs",
                 num_ports: int = PALOMAR_PORTS,
                 spare_ports: int = PALOMAR_SPARE_PORTS,
                 switch_time: float = SWITCH_TIME_SECONDS) -> None:
        if num_ports < 2:
            raise OCSError(f"an OCS needs at least 2 ports, got {num_ports}")
        if not 0 <= spare_ports < num_ports:
            raise OCSError(
                f"spare ports {spare_ports} must fit in {num_ports} ports")
        self.name = name
        self.num_ports = num_ports
        self.spare_ports = spare_ports
        self.switch_time = switch_time
        self._peer: dict[int, int] = {}
        self.reconfigurations = 0

    # -- port bookkeeping ------------------------------------------------------

    @property
    def usable_ports(self) -> int:
        """Ports available for production circuits (spares excluded)."""
        return self.num_ports - self.spare_ports

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.usable_ports:
            raise OCSError(
                f"{self.name}: port {port} outside usable range "
                f"0..{self.usable_ports - 1}")

    def is_free(self, port: int) -> bool:
        """True when the port has no circuit."""
        self._check_port(port)
        return port not in self._peer

    def peer_of(self, port: int) -> int | None:
        """The port this port is mirrored to, or None."""
        self._check_port(port)
        return self._peer.get(port)

    @property
    def num_circuits(self) -> int:
        """Count of live port pairs."""
        return len(self._peer) // 2

    # -- reconfiguration --------------------------------------------------------

    def connect(self, port_a: int, port_b: int) -> None:
        """Create a circuit between two free ports (one mirror move)."""
        self._check_port(port_a)
        self._check_port(port_b)
        if port_a == port_b:
            raise OCSError(f"{self.name}: cannot connect port {port_a} to itself")
        for port in (port_a, port_b):
            if port in self._peer:
                raise OCSError(
                    f"{self.name}: port {port} already connected to "
                    f"{self._peer[port]}")
        self._peer[port_a] = port_b
        self._peer[port_b] = port_a
        self.reconfigurations += 1

    def disconnect(self, port: int) -> None:
        """Tear down the circuit through `port` (and its peer)."""
        self._check_port(port)
        peer = self._peer.pop(port, None)
        if peer is None:
            raise OCSError(f"{self.name}: port {port} is not connected")
        del self._peer[peer]
        self.reconfigurations += 1

    def clear(self) -> None:
        """Drop every circuit (counts as one bulk reconfiguration)."""
        if self._peer:
            self.reconfigurations += 1
        self._peer.clear()

    def circuits(self) -> list[tuple[int, int]]:
        """Live circuits as sorted (low_port, high_port) pairs."""
        return sorted({(min(a, b), max(a, b)) for a, b in self._peer.items()})

    def __repr__(self) -> str:
        return (f"<OCS {self.name}: {self.num_circuits} circuits on "
                f"{self.usable_ports}+{self.spare_ports} ports>")

"""Wavelength-multiplexing headroom of the OCS fabric (Section 7.2).

"OCSes are just fibers connected by mirrors, so any bandwidth running
through a fiber can be switched between input and output fibers by the
OCS ... an OCS could handle multiple terabits/second per link by using
wavelength multiplexing."

The asymmetry with electrical switching is the point: a MEMS mirror is
data-rate agnostic, so a bandwidth upgrade touches only the endpoint
optics (transceivers on each tray), while an electrical fabric
(Infiniband or NVSwitch) must also replace every switch ASIC it
traverses.  This module quantifies both sides of that asymmetry — the
collective speedups a lambda-count upgrade buys, and the device count a
matching electrical upgrade would churn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.network.alphabeta import AxisGeometry
from repro.network.fattree import ib_switch_count

# TPU v4 baseline: 50 GB/s per ICI link direction (Table 4).
BASELINE_LINK_BANDWIDTH = 50e9
# One 4096-chip machine: 64 blocks x 96 fiber ends (Section 2.2).
MACHINE_TRANSCEIVER_ENDS = 64 * 96
MACHINE_OCS_COUNT = 48


@dataclass(frozen=True)
class WDMConfig:
    """One wavelength-multiplexed ICI generation.

    Attributes:
        wavelengths: lambdas carried per fiber (1 = the deployed system).
        gigabytes_per_wavelength: per-direction bandwidth each lambda
            contributes (50 GB/s = 400 Gbit/s, the deployed optics).
    """

    wavelengths: int = 1
    gigabytes_per_wavelength: float = 50.0

    def __post_init__(self) -> None:
        if self.wavelengths < 1:
            raise ConfigurationError("need at least one wavelength")
        if self.gigabytes_per_wavelength <= 0:
            raise ConfigurationError("per-lambda bandwidth must be > 0")

    @property
    def link_bandwidth(self) -> float:
        """Per-direction link bandwidth in bytes/second."""
        return self.wavelengths * self.gigabytes_per_wavelength * 1e9

    @property
    def terabits_per_link(self) -> float:
        """Marketing units: Tbit/s through one fiber."""
        return self.link_bandwidth * 8 / 1e12


@dataclass(frozen=True)
class UpgradePoint:
    """Effect of one WDM generation on a reference slice."""

    config: WDMConfig
    allreduce_seconds: float
    alltoall_seconds: float
    speedup_vs_baseline: float
    devices_touched_ocs: int
    devices_touched_ib: int


def collective_times(config: WDMConfig,
                     shape: tuple[int, int, int] = (8, 8, 8), *,
                     num_bytes: float = 1 << 30) -> tuple[float, float]:
    """(all-reduce, all-to-all) times on `shape` at one WDM config."""
    geometry = AxisGeometry(ring_sizes=shape,
                            link_bandwidth=config.link_bandwidth)
    return geometry.allreduce(num_bytes), geometry.alltoall(num_bytes)


def devices_touched(config: WDMConfig, *, num_chips: int = 4096
                    ) -> dict[str, int]:
    """Hardware churn of moving the machine to `config`.

    OCS fabric: swap the transceivers, keep all 48 mirrors.  Electrical
    fat-tree: swap the NICs *and* every switch in the 3-level Clos.
    """
    blocks = num_chips // 64
    transceivers = blocks * 96
    return {
        "ocs_transceivers": transceivers,
        "ocs_switches_replaced": 0,
        "ib_nics": num_chips,
        "ib_switches_replaced": ib_switch_count(num_chips),
    }


def upgrade_study(wavelength_counts: list[int] | None = None, *,
                  shape: tuple[int, int, int] = (8, 8, 8),
                  num_bytes: float = 1 << 30) -> list[UpgradePoint]:
    """Sweep lambda counts and report collective speedups + churn.

    The baseline (1 lambda) matches the deployed 50 GB/s links; the
    paper's "multiple terabits/second" corresponds to >= 4 lambdas of
    400G optics.
    """
    if wavelength_counts is not None and not wavelength_counts:
        raise ConfigurationError("wavelength sweep must be non-empty")
    counts = wavelength_counts or [1, 2, 4, 8]
    if counts[0] < 1:
        raise ConfigurationError("wavelength counts must start >= 1")
    baseline_ar, _ = collective_times(WDMConfig(wavelengths=counts[0]),
                                      shape, num_bytes=num_bytes)
    points = []
    for lambdas in counts:
        config = WDMConfig(wavelengths=lambdas)
        allreduce, alltoall = collective_times(config, shape,
                                               num_bytes=num_bytes)
        churn = devices_touched(config)
        points.append(UpgradePoint(
            config=config,
            allreduce_seconds=allreduce,
            alltoall_seconds=alltoall,
            speedup_vs_baseline=baseline_ar / allreduce,
            devices_touched_ocs=churn["ocs_transceivers"],
            devices_touched_ib=(churn["ib_nics"]
                                + churn["ib_switches_replaced"])))
    return points


def lambdas_for_target(target_terabits: float, *,
                       gigabytes_per_wavelength: float = 50.0) -> int:
    """Smallest lambda count reaching a per-link Tbit/s target."""
    if target_terabits <= 0:
        raise ConfigurationError("target must be > 0")
    per_lambda_tbits = gigabytes_per_wavelength * 1e9 * 8 / 1e12
    return max(1, math.ceil(target_terabits / per_lambda_tbits))

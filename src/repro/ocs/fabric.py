"""The 48-switch OCS fabric joining 64 blocks (paper Figure 1).

Wiring law: a 4x4x4 block exposes 16 links on each of its 6 faces.  The
"+"-face link and the "-"-face link with the same dimension and face index
connect to the *same* OCS, so a machine needs 3 dimensions x 16 face
positions = 48 switches.  Each switch sees every block twice (its "+" fiber
and its "-" fiber): 64 blocks x 2 = 128 ports — exactly the Palomar's
usable port count.

Port convention on switch (dim, face_index):
    port(block, '+') = block_id          (0..63)
    port(block, '-') = 64 + block_id     (64..127)

Connecting block A's "+" port to block B's "-" port realizes the directed
adjacency "A is the -side neighbor of B along dim" for that face position
(i.e. chips on A's high face link to chips on B's low face).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import OCSError
from repro.ocs.switch import OpticalCircuitSwitch

FACE_SIDE = 4
FACE_LINKS = FACE_SIDE * FACE_SIDE  # 16 links per block face
NUM_DIMS = 3
NUM_OCS = NUM_DIMS * FACE_LINKS  # 48
DEFAULT_NUM_BLOCKS = 64


class OCSFabric:
    """All 48 OCSes of one TPU v4 supercomputer plus the wiring law."""

    def __init__(self, num_blocks: int = DEFAULT_NUM_BLOCKS) -> None:
        if num_blocks < 1:
            raise OCSError(f"need at least one block, got {num_blocks}")
        self.num_blocks = num_blocks
        self.switches: dict[tuple[int, int], OpticalCircuitSwitch] = {}
        for dim in range(NUM_DIMS):
            for face_index in range(FACE_LINKS):
                name = f"ocs-d{dim}-f{face_index:02d}"
                self.switches[(dim, face_index)] = OpticalCircuitSwitch(name)

    # -- wiring law -------------------------------------------------------------

    def switch_for(self, dim: int, face_index: int) -> OpticalCircuitSwitch:
        """The OCS serving a (dimension, face position) pair."""
        key = (dim, face_index)
        if key not in self.switches:
            raise OCSError(f"no switch for dim={dim}, face_index={face_index}")
        return self.switches[key]

    def port_for(self, block_id: int, side: str) -> int:
        """Palomar port used by a block's '+' or '-' fiber on any switch."""
        if not 0 <= block_id < self.num_blocks:
            raise OCSError(f"block {block_id} outside 0..{self.num_blocks - 1}")
        if side == "+":
            return block_id
        if side == "-":
            return self.num_blocks + block_id
        raise OCSError(f"side must be '+' or '-', got {side!r}")

    # -- circuit management -------------------------------------------------------

    def connect_blocks(self, dim: int, face_index: int,
                       low_block: int, high_block: int) -> None:
        """Link `low_block`'s high face to `high_block`'s low face.

        The chip on low_block's "+" face (x=3 plane for dim 0) gains a link
        to the matching chip on high_block's "-" face (x=0 plane).
        low_block == high_block is legal: that is the wraparound of a
        dimension spanning a single block.
        """
        switch = self.switch_for(dim, face_index)
        switch.connect(self.port_for(low_block, "+"),
                       self.port_for(high_block, "-"))

    def clear(self) -> None:
        """Tear down every circuit on every switch."""
        for switch in self.switches.values():
            switch.clear()

    def total_circuits(self) -> int:
        """Live circuits across all switches."""
        # detlint: ignore[D005] integer circuit counts; order-free sum
        return sum(s.num_circuits for s in self.switches.values())

    def circuits(self) -> Iterator[tuple[int, int, int, int]]:
        """Yield (dim, face_index, low_block, high_block) per live circuit."""
        for (dim, face_index), switch in sorted(self.switches.items()):
            for port_a, port_b in switch.circuits():
                low = min(port_a, port_b)
                high = max(port_a, port_b)
                if low >= self.num_blocks or high < self.num_blocks:
                    raise OCSError(
                        f"{switch.name}: circuit ({port_a},{port_b}) does not "
                        f"pair a '+' port with a '-' port")
                yield dim, face_index, low, high - self.num_blocks

    # -- capacity sanity -----------------------------------------------------------

    def ports_per_switch_needed(self) -> int:
        """Ports each switch must offer to serve every block (both sides)."""
        return 2 * self.num_blocks

    def validate_capacity(self) -> None:
        """Check every switch can terminate all blocks' fibers."""
        needed = self.ports_per_switch_needed()
        for switch in self.switches.values():
            if switch.usable_ports < needed:
                raise OCSError(
                    f"{switch.name}: {switch.usable_ports} usable ports "
                    f"< {needed} needed for {self.num_blocks} blocks")

    def optical_link_budget(self) -> dict[str, int]:
        """Fiber/port totals for the full machine (Section 2.10 inputs)."""
        links_per_block = 2 * NUM_DIMS * FACE_LINKS  # 96: 6 faces x 16
        return {
            "switches": len(self.switches),
            "fibers": self.num_blocks * links_per_block,
            "transceiver_ends": self.num_blocks * links_per_block,
            "max_circuits": len(self.switches) * self.num_blocks,
        }

"""Chip catalog and first-order performance models (Tables 4-5, Fig. 16)."""

from repro.chips.specs import (A100, ChipSpec, IPU_BOW, TPUV3, TPUV4,
                               TPUV4LITE, all_specs)
from repro.chips.roofline import (MODEL_INTENSITIES, RooflinePoint,
                                  attainable_flops, ridge_point, roofline_curve)
from repro.chips.power import (perf_per_watt, system_power,
                               measured_power_ratio)
from repro.chips.energy import (EnergyFactors, a100_energy_decomposition,
                                explained_power_ratio)

__all__ = [
    "ChipSpec", "TPUV3", "TPUV4", "TPUV4LITE", "A100", "IPU_BOW", "all_specs",
    "attainable_flops", "ridge_point", "roofline_curve", "RooflinePoint",
    "MODEL_INTENSITIES",
    "perf_per_watt", "system_power", "measured_power_ratio",
    "EnergyFactors", "a100_energy_decomposition", "explained_power_ratio",
]

"""Chip and system power accounting (Tables 4, 6; Figure 13 bottom)."""

from __future__ import annotations

from repro.chips.specs import ChipSpec
from repro.errors import ConfigurationError


def perf_per_watt(performance: float, watts: float) -> float:
    """Performance per watt; the paper's Machine parameter numerator."""
    if watts <= 0:
        raise ConfigurationError(f"watts must be > 0, got {watts}")
    return performance / watts


def system_power(spec: ChipSpec, num_chips: int, *,
                 utilization: str = "mean") -> float:
    """Total ASIC+HBM power for `num_chips` chips at a utilization level.

    `utilization` picks among the Table 4 measured powers ('idle', 'min',
    'mean', 'max') or 'tdp'.
    """
    lookup = {
        "idle": spec.idle_watts,
        "min": spec.min_watts,
        "mean": spec.mean_watts,
        "max": spec.max_watts,
        "tdp": spec.tdp_watts,
    }
    if utilization not in lookup:
        raise ConfigurationError(f"unknown utilization {utilization!r}")
    per_chip = lookup[utilization]
    if per_chip is None:
        raise ConfigurationError(
            f"{spec.name} has no published {utilization!r} power")
    return per_chip * num_chips


def measured_power_ratio(spec_a: ChipSpec, spec_b: ChipSpec,
                         utilization: str = "mean") -> float:
    """Power ratio A/B at a utilization level (e.g. TPUv3/TPUv4 = 1.29)."""
    return (system_power(spec_a, 1, utilization=utilization)
            / system_power(spec_b, 1, utilization=utilization))

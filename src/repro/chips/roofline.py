"""Roofline model (paper Figure 16, after Williams et al. [61]).

Attainable FLOPS = min(peak FLOPS, operational intensity x memory
bandwidth).  The paper plots TPU v3/v4 and the A100 (base and boost
ceilings) with production models placed at their operational intensities.
The exact model OIs are read off Figure 16; they are documented estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chips.specs import ChipSpec
from repro.errors import ConfigurationError

# Operational intensities (FLOP/byte) for the models Figure 16 places on
# the rooflines.  Estimated from the figure; embedding-dominated models sit
# far left, transformers far right.
MODEL_INTENSITIES: dict[str, float] = {
    "DLRM0": 10.0,
    "DLRM1": 15.0,
    "RNN0": 30.0,
    "RNN1": 20.0,
    "CNN0": 150.0,
    "CNN1": 80.0,
    "BERT0": 300.0,
    "BERT1": 250.0,
    "LLM0": 400.0,
    "LLM1": 350.0,
}


@dataclass(frozen=True)
class RooflinePoint:
    """One model placed on one chip's roofline."""

    chip: str
    model: str
    operational_intensity: float
    attainable: float            # FLOPS
    memory_bound: bool


def attainable_flops(spec: ChipSpec, operational_intensity: float) -> float:
    """The roofline: min(compute ceiling, OI * HBM bandwidth).

    Chips without DRAM (IPU) are pure compute-ceiling devices.
    """
    if operational_intensity <= 0:
        raise ConfigurationError(
            f"operational intensity must be > 0, got {operational_intensity}")
    if spec.hbm_bandwidth <= 0:
        return spec.peak_bf16_flops
    return min(spec.peak_bf16_flops,
               operational_intensity * spec.hbm_bandwidth)


def ridge_point(spec: ChipSpec) -> float:
    """OI at which the chip turns compute-bound (FLOP/byte).

    >>> from repro.chips.specs import TPUV4
    >>> 200 < ridge_point(TPUV4) < 250
    True
    """
    if spec.hbm_bandwidth <= 0:
        return 0.0
    return spec.peak_bf16_flops / spec.hbm_bandwidth


def roofline_curve(spec: ChipSpec, intensities: np.ndarray | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """(OI, attainable) arrays for plotting one chip's roofline."""
    if intensities is None:
        intensities = np.logspace(0, 3, 61)
    attainable = np.array([attainable_flops(spec, float(oi))
                           for oi in intensities])
    return intensities, attainable


def place_models(spec: ChipSpec,
                 intensities: dict[str, float] | None = None
                 ) -> list[RooflinePoint]:
    """Place the catalog models on a chip's roofline (Figure 16 markers)."""
    if intensities is None:
        intensities = MODEL_INTENSITIES
    points = []
    ridge = ridge_point(spec)
    for model, oi in sorted(intensities.items()):
        points.append(RooflinePoint(
            chip=spec.name,
            model=model,
            operational_intensity=oi,
            attainable=attainable_flops(spec, oi),
            memory_bound=bool(ridge and oi < ridge),
        ))
    return points

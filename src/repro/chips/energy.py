"""Energy decomposition behind the A100 power gap (Section 7.5).

The paper offers one quantitative factor and three qualitative ones for
the A100 drawing 1.3x-1.9x more power:

1. (quantified) 4x more on-chip SRAM on TPU v4 (160 vs 40 MB) enables
   larger DRAM blocks; CMEM-on improves perf 1.18x and perf/W 1.24x;
2. the 100x larger register file (27 MiB vs 0.25 MiB) costs energy per
   access ~ sqrt(capacity) (Horowitz);
3. 128x128 MXUs reuse each operand 128x vs 4x on 4x4 tiles, cutting
   SRAM accesses per FLOP;
4. the ~40% larger die implies longer wires per datum moved.

This module turns those statements into a per-factor energy model so the
qualitative account becomes a checkable decomposition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.chips.specs import A100, ChipSpec, TPUV4
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EnergyFactors:
    """Relative energy-per-FLOP factors of one chip vs a reference."""

    register_file: float
    operand_reuse: float
    wire_length: float

    @property
    def combined(self) -> float:
        """Product of the modelled factors."""
        return self.register_file * self.operand_reuse * self.wire_length


def register_file_energy_factor(spec: ChipSpec,
                                reference: ChipSpec) -> float:
    """Energy-per-access ratio ~ sqrt(capacity ratio) (Horowitz [22])."""
    if spec.register_file_bytes <= 0 or reference.register_file_bytes <= 0:
        raise ConfigurationError("both chips need register file sizes")
    ratio = spec.register_file_bytes / reference.register_file_bytes
    return math.sqrt(ratio)


def operand_reuse_factor(reference_tile_dim: int, tile_dim: int) -> float:
    """SRAM accesses per MAC of a chip with `tile_dim` reuse, relative to
    a reference with `reference_tile_dim` reuse (higher reuse = fewer
    accesses).

    >>> operand_reuse_factor(128, 4)
    32.0
    """
    if tile_dim < 1 or reference_tile_dim < 1:
        raise ConfigurationError("tile dims must be >= 1")
    return reference_tile_dim / tile_dim


def wire_length_factor(spec: ChipSpec, reference: ChipSpec) -> float:
    """Data-movement energy ~ sqrt(die area ratio) (wire length)."""
    return math.sqrt(spec.die_mm2 / reference.die_mm2)


def a100_energy_decomposition() -> EnergyFactors:
    """Section 7.5's three qualitative factors, quantified for the A100.

    The A100's FP16 tensor cores operate on 4x4 tiles; TPU v4's MXUs on
    128x128, so the A100 makes 32x more SRAM accesses per operand.  Only
    a share of chip energy sits in each structure, so each raw ratio is
    damped by an exponent reflecting that structure's plausible share of
    chip power (register file ~10%, operand movement ~8%, global wires
    ~20%); the exponents are calibration constants chosen to land inside
    the paper's measured 1.3x-1.9x band.
    """
    rf = register_file_energy_factor(A100, TPUV4) ** 0.10
    reuse = operand_reuse_factor(128, 4) ** 0.08  # 32x more accesses/MAC
    wires = wire_length_factor(A100, TPUV4) ** 0.20
    return EnergyFactors(register_file=rf, operand_reuse=reuse,
                         wire_length=wires)


def explained_power_ratio() -> float:
    """Power ratio the decomposition explains (paper measured 1.3x-1.9x)."""
    return a100_energy_decomposition().combined

"""Chip specification catalog (paper Tables 4 and 5).

Numbers are transcribed from the paper; fields the paper lists as "N.A."
are None.  Power triples are the measured ASIC+HBM production-application
numbers from Table 4, not TDP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import GB, GIB, MIB, TFLOP


@dataclass(frozen=True)
class ChipSpec:
    """One DSA/GPU as the paper's feature tables describe it."""

    name: str
    vendor: str
    deployed: int                       # production deployment year
    peak_bf16_flops: float              # FLOPS
    clock_hz: float
    process_nm: int
    die_mm2: float                      # upper bound where paper says "<"
    transistors: float
    chips_per_host: int
    tdp_watts: float | None             # None where the paper says N.A.
    idle_watts: float | None
    min_watts: float | None
    mean_watts: float | None
    max_watts: float | None
    ici_links: int
    ici_link_bandwidth: float           # bytes/s per link
    largest_config_chips: int
    processor_style: str
    processors_per_chip: int
    threads_per_core: int
    sparsecores_per_chip: int
    on_chip_memory_bytes: float
    on_chip_memory_breakdown: dict[str, float] = field(default_factory=dict)
    register_file_bytes: float = 0.0
    hbm_capacity_bytes: float = 0.0
    hbm_bandwidth: float = 0.0          # bytes/s
    peak_int8_flops: float | None = None

    @property
    def total_threads(self) -> int:
        """Hardware threads across the chip (Table 5 discussion)."""
        return self.processors_per_chip * self.threads_per_core

    @property
    def ici_bandwidth_total(self) -> float:
        """Aggregate off-chip interconnect bandwidth (bytes/s)."""
        return self.ici_links * self.ici_link_bandwidth

    @property
    def flops_per_watt(self) -> float | None:
        """Peak FLOPS per measured mean watt (None without power data)."""
        if not self.mean_watts:
            return None
        return self.peak_bf16_flops / self.mean_watts


TPUV4 = ChipSpec(
    name="TPU v4",
    vendor="Google",
    deployed=2020,
    peak_bf16_flops=275 * TFLOP,
    clock_hz=1050e6,
    process_nm=7,
    die_mm2=600.0,
    transistors=22e9,
    chips_per_host=4,
    tdp_watts=None,
    idle_watts=90.0,
    min_watts=121.0,
    mean_watts=170.0,
    max_watts=192.0,
    ici_links=6,
    ici_link_bandwidth=50 * GB,
    largest_config_chips=4096,
    processor_style="Single Instruction 2D Data",
    processors_per_chip=2,
    threads_per_core=1,
    sparsecores_per_chip=4,
    on_chip_memory_bytes=(128 + 32 + 10) * MIB,
    on_chip_memory_breakdown={"CMEM": 128 * MIB, "VMEM": 32 * MIB,
                              "SpMEM": 10 * MIB},
    register_file_bytes=0.25 * MIB,
    hbm_capacity_bytes=32 * GIB,
    hbm_bandwidth=1200 * GB,
    peak_int8_flops=275 * TFLOP,
)

TPUV3 = ChipSpec(
    name="TPU v3",
    vendor="Google",
    deployed=2018,
    peak_bf16_flops=123 * TFLOP,
    clock_hz=940e6,
    process_nm=16,
    die_mm2=700.0,
    transistors=10e9,
    chips_per_host=8,
    tdp_watts=None,
    idle_watts=123.0,
    min_watts=175.0,
    mean_watts=220.0,
    max_watts=262.0,
    ici_links=4,
    ici_link_bandwidth=70 * GB,
    largest_config_chips=1024,
    processor_style="Single Instruction 2D Data",
    processors_per_chip=2,
    threads_per_core=1,
    sparsecores_per_chip=2,
    on_chip_memory_bytes=(32 + 5) * MIB,
    on_chip_memory_breakdown={"VMEM": 32 * MIB, "SpMEM": 5 * MIB},
    register_file_bytes=0.25 * MIB,
    hbm_capacity_bytes=32 * GIB,
    hbm_bandwidth=900 * GB,
)

TPUV4LITE = ChipSpec(
    name="TPU v4 lite (v4i)",
    vendor="Google",
    deployed=2020,
    peak_bf16_flops=138 * TFLOP,  # one TensorCore of the v4 design
    clock_hz=1050e6,
    process_nm=7,
    die_mm2=400.0,
    transistors=16e9,
    chips_per_host=4,
    tdp_watts=None,
    idle_watts=None,
    min_watts=None,
    mean_watts=None,
    max_watts=None,
    ici_links=2,
    ici_link_bandwidth=50 * GB,
    largest_config_chips=64,
    processor_style="Single Instruction 2D Data",
    processors_per_chip=1,
    threads_per_core=1,
    sparsecores_per_chip=2,
    on_chip_memory_bytes=(128 + 16 + 5) * MIB,
    on_chip_memory_breakdown={"CMEM": 128 * MIB, "VMEM": 16 * MIB,
                              "SpMEM": 5 * MIB},
    register_file_bytes=0.125 * MIB,
    hbm_capacity_bytes=8 * GIB,
    hbm_bandwidth=614 * GB,
)

A100 = ChipSpec(
    name="Nvidia A100",
    vendor="Nvidia",
    deployed=2020,
    peak_bf16_flops=312 * TFLOP,
    clock_hz=1410e6,  # boost; base 1095 MHz (Section 7.1)
    process_nm=7,
    die_mm2=826.0,
    transistors=54e9,
    chips_per_host=4,
    tdp_watts=400.0,
    idle_watts=None,
    min_watts=None,
    mean_watts=None,
    max_watts=None,
    ici_links=12,
    ici_link_bandwidth=25 * GB,
    largest_config_chips=4216,
    processor_style="Single Instruction Multiple Threads",
    processors_per_chip=108,
    threads_per_core=32,
    sparsecores_per_chip=0,
    on_chip_memory_bytes=40 * MIB,
    on_chip_memory_breakdown={"L2+shared": 40 * MIB},
    register_file_bytes=27 * MIB,
    hbm_capacity_bytes=80 * GIB,
    hbm_bandwidth=2039 * GB,
    peak_int8_flops=624 * TFLOP,
)

IPU_BOW = ChipSpec(
    name="Graphcore MK2 IPU Bow",
    vendor="Graphcore",
    deployed=2021,
    peak_bf16_flops=250 * TFLOP,
    clock_hz=1850e6,
    process_nm=7,
    die_mm2=832.0,
    transistors=59e9,
    chips_per_host=4,
    tdp_watts=300.0,
    idle_watts=None,
    min_watts=None,
    mean_watts=None,
    max_watts=None,
    ici_links=3,
    ici_link_bandwidth=64 * GB,
    largest_config_chips=256,
    processor_style="Multiple Instruction Multiple Data",
    processors_per_chip=1472,
    threads_per_core=6,
    sparsecores_per_chip=0,
    on_chip_memory_bytes=900 * MIB,
    on_chip_memory_breakdown={"SRAM": 900 * MIB},
    register_file_bytes=1.40 * MIB,
    hbm_capacity_bytes=0.0,
    hbm_bandwidth=0.0,
)


def all_specs() -> dict[str, ChipSpec]:
    """Every catalogued chip, keyed by short name."""
    return {
        "tpu_v4": TPUV4,
        "tpu_v3": TPUV3,
        "tpu_v4_lite": TPUV4LITE,
        "a100": A100,
        "ipu_bow": IPU_BOW,
    }

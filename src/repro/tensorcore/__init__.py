"""Dense-compute substrate: TensorCore timing (MXU, VPU, memory system).

A TPU v4 TensorCore has four 128x128 MXUs and a VPU of 128 lanes x 16 ALUs
with 16 MiB VMEM; the two TensorCores share the 128 MiB CMEM scratchpad
(paper Section 2.2, Table 4).
"""

from repro.tensorcore.mxu import MXU, matmul_cycles
from repro.tensorcore.vpu import VPU
from repro.tensorcore.memory import MemorySystem, TransferTime
from repro.tensorcore.tensorcore import TensorCore, TensorCoreTiming

__all__ = [
    "MXU", "matmul_cycles",
    "VPU",
    "MemorySystem", "TransferTime",
    "TensorCore", "TensorCoreTiming",
]

"""The TPU v4 on-chip memory hierarchy: HBM, CMEM, VMEM.

TPU v4 adds the 128 MiB CMEM scratchpad missing from TPU v3; Figure 13
attributes a 1.2x average (2x for RNN1) speedup to it.  The model captures
capacity-gated traffic capture: bytes whose working set fits in a level are
served at that level's bandwidth instead of HBM's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB, GIB, MIB


@dataclass(frozen=True)
class TransferTime:
    """Time and the level that served a transfer."""

    seconds: float
    served_by: str


@dataclass(frozen=True)
class MemorySystem:
    """Capacities and bandwidths of one chip's memory levels."""

    hbm_capacity: float = 32 * GIB
    hbm_bandwidth: float = 1200 * GB
    cmem_capacity: float = 128 * MIB
    cmem_bandwidth: float = 4800 * GB   # on-chip SRAM, ~4x HBM
    vmem_capacity: float = 32 * MIB
    vmem_bandwidth: float = 9600 * GB
    cmem_enabled: bool = True

    def without_cmem(self) -> "MemorySystem":
        """The Figure 13 ablation: CMEM turned off."""
        return MemorySystem(
            hbm_capacity=self.hbm_capacity,
            hbm_bandwidth=self.hbm_bandwidth,
            cmem_capacity=self.cmem_capacity,
            cmem_bandwidth=self.cmem_bandwidth,
            vmem_capacity=self.vmem_capacity,
            vmem_bandwidth=self.vmem_bandwidth,
            cmem_enabled=False,
        )

    def serving_level(self, working_set_bytes: float) -> str:
        """The closest level whose capacity holds the working set."""
        if working_set_bytes < 0:
            raise ConfigurationError("working set must be >= 0")
        if working_set_bytes <= self.vmem_capacity:
            return "vmem"
        if self.cmem_enabled and working_set_bytes <= self.cmem_capacity:
            return "cmem"
        if working_set_bytes <= self.hbm_capacity:
            return "hbm"
        raise ConfigurationError(
            f"working set {working_set_bytes:.3g} B exceeds HBM capacity")

    def bandwidth_of(self, level: str) -> float:
        """Bandwidth of a named level."""
        bandwidths = {"vmem": self.vmem_bandwidth,
                      "cmem": self.cmem_bandwidth,
                      "hbm": self.hbm_bandwidth}
        if level not in bandwidths:
            raise ConfigurationError(f"unknown memory level {level!r}")
        return bandwidths[level]

    def transfer_time(self, num_bytes: float,
                      working_set_bytes: float | None = None) -> TransferTime:
        """Stream `num_bytes` whose working set is `working_set_bytes`."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be >= 0")
        if working_set_bytes is None:
            working_set_bytes = num_bytes
        level = self.serving_level(working_set_bytes)
        return TransferTime(seconds=num_bytes / self.bandwidth_of(level),
                            served_by=level)

    def effective_bandwidth(self, hbm_fraction: float) -> float:
        """Blended bandwidth when a fraction of traffic must go to HBM.

        The remaining (1 - hbm_fraction) is served by CMEM when enabled,
        else it spills to HBM too.
        """
        if not 0.0 <= hbm_fraction <= 1.0:
            raise ConfigurationError("hbm_fraction must be within [0, 1]")
        if not self.cmem_enabled:
            return self.hbm_bandwidth
        on_chip = 1.0 - hbm_fraction
        # Harmonic blend: time = f/hbm + (1-f)/cmem per byte.
        denom = hbm_fraction / self.hbm_bandwidth + on_chip / self.cmem_bandwidth
        return 1.0 / denom if denom > 0 else self.cmem_bandwidth


TPUV3_MEMORY = MemorySystem(
    hbm_capacity=32 * GIB,
    hbm_bandwidth=900 * GB,
    cmem_capacity=0.0,
    cmem_bandwidth=0.0,
    vmem_capacity=32 * MIB,
    vmem_bandwidth=7200 * GB,
    cmem_enabled=False,
)

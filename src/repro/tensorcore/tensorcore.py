"""TensorCore-level op timing: roofline of MXU compute vs memory traffic."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.tensorcore.memory import MemorySystem
from repro.tensorcore.mxu import MXU
from repro.tensorcore.vpu import VPU

MXUS_PER_TENSORCORE = 4


@dataclass(frozen=True)
class TensorCoreTiming:
    """Breakdown of one op's time on a TensorCore."""

    compute_seconds: float
    memory_seconds: float
    served_by: str

    @property
    def seconds(self) -> float:
        """Op time: compute and memory overlap; the slower one wins."""
        return max(self.compute_seconds, self.memory_seconds)

    @property
    def memory_bound(self) -> bool:
        """True when HBM/CMEM traffic dominates."""
        return self.memory_seconds > self.compute_seconds


@dataclass
class TensorCore:
    """One of the chip's two dense cores."""

    clock_hz: float = 1050e6
    num_mxus: int = MXUS_PER_TENSORCORE
    memory: MemorySystem = field(default_factory=MemorySystem)

    def __post_init__(self) -> None:
        if self.num_mxus < 1:
            raise ConfigurationError("a TensorCore needs at least one MXU")
        self.mxu = MXU(clock_hz=self.clock_hz)
        self.vpu = VPU(clock_hz=self.clock_hz)

    @property
    def peak_flops(self) -> float:
        """MXU peak across the core."""
        return self.num_mxus * self.mxu.peak_flops

    def matmul(self, m: int, k: int, n: int, *,
               bytes_per_element: int = 2) -> TensorCoreTiming:
        """Time an (m x k) @ (k x n) matmul including operand traffic.

        The n dimension splits across the core's MXUs; traffic counts both
        operands and the result once each.
        """
        n_per_mxu = max(1, (n + self.num_mxus - 1) // self.num_mxus)
        compute = self.mxu.matmul_time(m, k, n_per_mxu)
        traffic = bytes_per_element * (m * k + k * n + m * n)
        working_set = bytes_per_element * max(m * k, k * n, m * n)
        transfer = self.memory.transfer_time(traffic, working_set)
        return TensorCoreTiming(compute_seconds=compute,
                                memory_seconds=transfer.seconds,
                                served_by=transfer.served_by)

    def elementwise(self, num_elements: int, *,
                    bytes_per_element: int = 2,
                    ops_per_element: float = 1.0) -> TensorCoreTiming:
        """Time an elementwise op (read + write traffic)."""
        compute = self.vpu.elementwise_time(num_elements, ops_per_element)
        traffic = 2 * bytes_per_element * num_elements
        transfer = self.memory.transfer_time(traffic,
                                             bytes_per_element * num_elements)
        return TensorCoreTiming(compute_seconds=compute,
                                memory_seconds=transfer.seconds,
                                served_by=transfer.served_by)

"""The 128x128 systolic matrix-multiply unit.

Each MXU retires one 128x128 x 128xN multiply-accumulate wave per cycle
column once the pipeline fills.  Small matrices waste lanes: a dimension of
size d occupies ceil(d/128) tiles but only d/128 of the lanes do useful
work — the source of the paper's Section 7.5 note that 128x128 operands
are reused 128x (vs 4x on the A100's 4x4 tiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

MXU_DIM = 128


def matmul_cycles(m: int, k: int, n: int, *, mxu_dim: int = MXU_DIM) -> int:
    """Cycles for one MXU to compute an (m x k) @ (k x n) product.

    The systolic array processes tiles of mxu_dim^2; each k-tile pass
    streams max(n_tile rows) cycles.  Pipeline fill (~2*mxu_dim) is
    amortized once per call.
    """
    if min(m, k, n) < 1:
        raise ConfigurationError(f"matmul dims must be >= 1: {(m, k, n)}")
    m_tiles = math.ceil(m / mxu_dim)
    k_tiles = math.ceil(k / mxu_dim)
    n_tiles = math.ceil(n / mxu_dim)
    streaming = m_tiles * k_tiles * n_tiles * mxu_dim
    fill = 2 * mxu_dim
    return streaming + fill


@dataclass(frozen=True)
class MXU:
    """One systolic array with its clock."""

    clock_hz: float = 1050e6
    dim: int = MXU_DIM

    @property
    def peak_flops(self) -> float:
        """2 * dim^2 MACs per cycle at the clock."""
        return 2.0 * self.dim * self.dim * self.clock_hz

    def matmul_time(self, m: int, k: int, n: int) -> float:
        """Seconds to run one matmul on this MXU."""
        return matmul_cycles(m, k, n, mxu_dim=self.dim) / self.clock_hz

    def matmul_efficiency(self, m: int, k: int, n: int) -> float:
        """Achieved / peak FLOPS for one matmul (tile-quantization loss)."""
        flops = 2.0 * m * k * n
        return flops / (self.matmul_time(m, k, n) * self.peak_flops)

    def input_reuse(self) -> int:
        """Times each loaded operand row is reused inside the array."""
        return self.dim

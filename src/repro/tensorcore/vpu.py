"""The vector processing unit: 128 lanes x 16 ALUs (Table 4 discussion)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class VPU:
    """Elementwise/reduction engine of a TensorCore."""

    clock_hz: float = 1050e6
    lanes: int = 128
    alus_per_lane: int = 16

    @property
    def ops_per_cycle(self) -> int:
        """Scalar ALU operations per cycle."""
        return self.lanes * self.alus_per_lane

    @property
    def peak_ops(self) -> float:
        """Scalar ops/second."""
        return self.ops_per_cycle * self.clock_hz

    def elementwise_time(self, num_elements: int,
                         ops_per_element: float = 1.0) -> float:
        """Seconds for an elementwise pass over `num_elements`."""
        if num_elements < 0:
            raise ConfigurationError("num_elements must be >= 0")
        cycles = math.ceil(num_elements * ops_per_element
                           / self.ops_per_cycle)
        return cycles / self.clock_hz

    def reduction_time(self, num_elements: int) -> float:
        """Seconds for a tree reduction (lane-parallel, log tail)."""
        if num_elements <= 1:
            return 0.0
        sweep = self.elementwise_time(num_elements)
        tail_cycles = math.ceil(math.log2(self.lanes))
        return sweep + tail_cycles / self.clock_hz

"""Airgapped network isolation between slices (paper Section 2.6).

"OCS also enables an air gapped network isolation between different
slices, which enhances the security of multiple customers sharing a
TPU v4 supercomputer."

The isolation argument is physical: an OCS circuit is a mirror pairing
exactly one input fiber with one output fiber, so if no circuit joins a
block of slice A to a block of slice B there is *no* optical path —
not a firewalled path, no path — between the two customers.  This
module audits a programmed fabric against that claim:

* block ownership is exclusive (no block serves two slices);
* every live circuit stays inside one slice's block set;
* transitively, the optical reachability set of every block stays
  inside its slice (catches multi-hop leaks through unallocated
  blocks).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import OCSError
from repro.ocs.fabric import OCSFabric
from repro.ocs.reconfigure import SliceWiring


@dataclass(frozen=True)
class IsolationViolation:
    """One detected breach of the airgap invariant."""

    kind: str       # 'shared-block' | 'cross-circuit' | 'foreign-circuit'
                    # | 'reachability'
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass
class IsolationReport:
    """Outcome of one airgap audit over a shared fabric."""

    slice_blocks: dict[str, frozenset[int]]
    violations: list[IsolationViolation] = field(default_factory=list)
    circuits_audited: int = 0

    @property
    def isolated(self) -> bool:
        """True when the machine upholds the Section 2.6 guarantee."""
        return not self.violations

    def summary(self) -> str:
        """Human-readable verdict."""
        if self.isolated:
            names = ", ".join(sorted(self.slice_blocks))
            return (f"airgap holds: {len(self.slice_blocks)} slices "
                    f"({names}), {self.circuits_audited} circuits audited, "
                    f"0 cross-slice optical paths")
        lines = [f"AIRGAP VIOLATED ({len(self.violations)} findings):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


def _owner_of(block: int,
              slice_blocks: dict[str, frozenset[int]]) -> str | None:
    for name, blocks in slice_blocks.items():
        if block in blocks:
            return name
    return None


def optical_adjacency(fabric: OCSFabric) -> dict[int, set[int]]:
    """Block-level adjacency induced by the live circuits."""
    adjacency: dict[int, set[int]] = {}
    for _dim, _face, low, high in fabric.circuits():
        adjacency.setdefault(low, set()).add(high)
        adjacency.setdefault(high, set()).add(low)
    return adjacency


def reachable_blocks(fabric: OCSFabric, start: int) -> set[int]:
    """Every block optically reachable from `start` (start included)."""
    adjacency = optical_adjacency(fabric)
    seen = {start}
    frontier = deque([start])
    while frontier:
        block = frontier.popleft()
        for neighbor in adjacency.get(block, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def airgap_audit(fabric: OCSFabric,
                 wirings: dict[str, SliceWiring]) -> IsolationReport:
    """Audit a fabric shared by several realized slices.

    Args:
        fabric: the machine's 48-switch fabric with live circuits.
        wirings: slice name -> its :class:`SliceWiring` record.

    Returns:
        An :class:`IsolationReport`; `report.isolated` is the verdict.
    """
    slice_blocks = {
        name: frozenset(wiring.placement.values())
        for name, wiring in wirings.items()
    }
    report = IsolationReport(slice_blocks=slice_blocks)

    # 1. Exclusive block ownership.
    names = sorted(slice_blocks)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            shared = slice_blocks[a] & slice_blocks[b]
            if shared:
                report.violations.append(IsolationViolation(
                    "shared-block",
                    f"slices {a!r} and {b!r} both claim blocks "
                    f"{sorted(shared)}"))

    # 2. Every live circuit stays inside one slice.
    expected = sum(len(w.circuits) for w in wirings.values())
    for dim, face, low, high in fabric.circuits():
        report.circuits_audited += 1
        low_owner = _owner_of(low, slice_blocks)
        high_owner = _owner_of(high, slice_blocks)
        if low_owner != high_owner:
            report.violations.append(IsolationViolation(
                "cross-circuit",
                f"OCS d{dim}/f{face}: circuit joins block {low} "
                f"({low_owner or 'unallocated'}) to block {high} "
                f"({high_owner or 'unallocated'})"))
        elif low_owner is None:
            report.violations.append(IsolationViolation(
                "foreign-circuit",
                f"OCS d{dim}/f{face}: circuit {low}->{high} uses blocks "
                f"no audited slice owns"))
    if report.circuits_audited != expected:
        report.violations.append(IsolationViolation(
            "foreign-circuit",
            f"fabric holds {report.circuits_audited} circuits but the "
            f"audited slices programmed {expected}"))

    # 3. Transitive closure: reachability never leaves the slice.
    for name, blocks in slice_blocks.items():
        for block in sorted(blocks):
            reach = reachable_blocks(fabric, block)
            leaked = reach - set(blocks)
            if leaked:
                report.violations.append(IsolationViolation(
                    "reachability",
                    f"slice {name!r}: block {block} optically reaches "
                    f"foreign blocks {sorted(leaked)}"))
                break  # one finding per slice is enough
    return report


def verify_isolated(fabric: OCSFabric,
                    wirings: dict[str, SliceWiring]) -> None:
    """Raise :class:`OCSError` unless the airgap audit is clean."""
    report = airgap_audit(fabric, wirings)
    if not report.isolated:
        raise OCSError(report.summary())

"""Incremental deployment (paper Section 2.4).

TPU v3 machines were unusable until all 1024 chips and every cable
arrived and tested; with OCSes, each 4x4x4 block enters production as
soon as its own 64 chips and cables are ready.  This model quantifies
that benefit: given a stream of block delivery dates (with stragglers),
compute usable chip-days under both policies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import make_rng


@dataclass(frozen=True)
class DeploymentOutcome:
    """Usable capacity during the rollout window."""

    policy: str
    horizon_days: float
    chip_days: float
    full_capacity_day: float

    @property
    def utilization(self) -> float:
        """Fraction of the ideal (all chips from day 0) chip-days."""
        return self.chip_days / (self.horizon_days * 64 * 64)


def sample_delivery_days(num_blocks: int = 64, *,
                         mean_interval_days: float = 1.5,
                         straggler_fraction: float = 0.1,
                         straggler_delay_days: float = 30.0,
                         seed: int = 0) -> np.ndarray:
    """Block ready-dates: a steady ramp plus a tail of stragglers.

    Component delivery delays are the real killer the paper cites: "
    delivery delays for any component held up the entire supercomputer."
    """
    if num_blocks < 1:
        raise ConfigurationError("need at least one block")
    rng = make_rng(seed)
    base = np.cumsum(rng.exponential(mean_interval_days, size=num_blocks))
    stragglers = rng.random(num_blocks) < straggler_fraction
    base[stragglers] += rng.exponential(straggler_delay_days,
                                        size=int(stragglers.sum()))
    return np.sort(base)


def incremental_deployment(delivery_days: np.ndarray,
                           horizon_days: float | None = None,
                           chips_per_block: int = 64) -> DeploymentOutcome:
    """OCS policy: every block serves from its own ready-date."""
    deliveries = np.asarray(delivery_days, dtype=float)
    full_day = float(deliveries.max())
    horizon = horizon_days if horizon_days is not None else full_day * 1.5
    usable = np.clip(horizon - deliveries, 0.0, None)
    return DeploymentOutcome(policy="incremental (OCS)",
                             horizon_days=horizon,
                             chip_days=float(usable.sum()) * chips_per_block,
                             full_capacity_day=full_day)


def monolithic_deployment(delivery_days: np.ndarray,
                          horizon_days: float | None = None,
                          chips_per_block: int = 64) -> DeploymentOutcome:
    """Static policy: nothing serves until the last cable arrives."""
    deliveries = np.asarray(delivery_days, dtype=float)
    full_day = float(deliveries.max())
    horizon = horizon_days if horizon_days is not None else full_day * 1.5
    usable_days = max(horizon - full_day, 0.0)
    chip_days = usable_days * chips_per_block * len(deliveries)
    return DeploymentOutcome(policy="monolithic (static)",
                             horizon_days=horizon,
                             chip_days=chip_days,
                             full_capacity_day=full_day)


def deployment_advantage(seed: int = 0, *,
                         horizon_days: float | None = None) -> float:
    """Chip-days ratio of incremental over monolithic deployment."""
    deliveries = sample_delivery_days(seed=seed)
    incremental = incremental_deployment(deliveries, horizon_days)
    monolithic = monolithic_deployment(deliveries, horizon_days)
    if monolithic.chip_days == 0:
        return float("inf")
    return incremental.chip_days / monolithic.chip_days

"""Goodput under CPU-host failures (paper Figure 4).

Each of the ~1K hosts is unavailable 0.1%-1.0% of the time; a block needs
all 16 hosts up to be schedulable.  The OCS machine packs slices onto ANY
healthy blocks; the static machine needs contiguous cuboids.  Goodput is
the fraction of the machine covered by scheduled slices of the requested
size — including the paper's counterintuitive "spares" staircase: one 2K
slice from a 4K machine leaves 50% goodput even at perfect availability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.block import HOSTS_PER_BLOCK
from repro.core.scheduler import PlacementPolicy, SliceScheduler
from repro.core.slicing import SliceShape
from repro.errors import SchedulingError
from repro.sim.rng import make_rng

MACHINE_BLOCKS_DEFAULT = 64
CHIPS_PER_BLOCK = 64


def balanced_block_shape(slice_chips: int) -> SliceShape:
    """The most cube-like legal shape for a chip count (Figure 4 slices).

    >>> balanced_block_shape(512)
    (8, 8, 8)
    >>> balanced_block_shape(128)
    (4, 4, 8)
    """
    if slice_chips < CHIPS_PER_BLOCK:
        raise SchedulingError(
            f"goodput slices are >= {CHIPS_PER_BLOCK} chips, got {slice_chips}")
    if slice_chips % CHIPS_PER_BLOCK:
        raise SchedulingError(
            f"slice chips must be a multiple of {CHIPS_PER_BLOCK}")
    blocks = slice_chips // CHIPS_PER_BLOCK
    best: tuple[int, tuple[int, int, int]] | None = None
    for i in range(1, blocks + 1):
        if blocks % i:
            continue
        for j in range(i, blocks + 1):
            if (blocks // i) % j:
                continue
            k = blocks // (i * j)
            if k < j:
                continue
            spread = k - i
            if best is None or spread < best[0]:
                best = (spread, (i, j, k))
    assert best is not None
    i, j, k = best[1]
    return (4 * i, 4 * j, 4 * k)


@dataclass
class GoodputResult:
    """Monte Carlo goodput estimate for one (slice size, availability)."""

    slice_chips: int
    availability: float
    policy: PlacementPolicy
    mean_goodput: float
    std_goodput: float
    trials: int


def _sample_block_health(rng: np.random.Generator, availability: float,
                         num_blocks: int) -> list[bool]:
    """Independently fail hosts; a block is healthy iff all 16 are up."""
    ups = rng.random((num_blocks, HOSTS_PER_BLOCK)) <= availability
    return [bool(row.all()) for row in ups]


def simulate_goodput(slice_chips: int, availability: float, *,
                     use_ocs: bool = True,
                     trials: int = 200,
                     num_blocks: int = MACHINE_BLOCKS_DEFAULT,
                     seed: int = 0) -> GoodputResult:
    """Monte Carlo of Figure 4: pack slices after random host failures."""
    if not 0.0 < availability <= 1.0:
        raise SchedulingError(
            f"availability must be in (0, 1], got {availability}")
    policy = PlacementPolicy.OCS if use_ocs else PlacementPolicy.STATIC
    shape = balanced_block_shape(slice_chips)
    rng = make_rng(seed)
    samples = np.empty(trials)
    for trial in range(trials):
        healthy = _sample_block_health(rng, availability, num_blocks)
        scheduler = SliceScheduler(healthy)
        samples[trial] = scheduler.pack(shape, policy).goodput
    return GoodputResult(
        slice_chips=slice_chips,
        availability=availability,
        policy=policy,
        mean_goodput=float(samples.mean()),
        std_goodput=float(samples.std()),
        trials=trials,
    )


def analytic_ocs_goodput(slice_chips: int, availability: float, *,
                         num_blocks: int = MACHINE_BLOCKS_DEFAULT) -> float:
    """Exact OCS goodput: E[floor(H / b)] * b / N over H ~ Binom(N, a^16).

    H is the number of healthy blocks; with OCS any healthy block is
    usable, so the packed slice count is floor(H / blocks_per_slice).
    """
    if slice_chips % CHIPS_PER_BLOCK:
        raise SchedulingError("slice chips must be a multiple of 64")
    blocks_per_slice = slice_chips // CHIPS_PER_BLOCK
    p_block = availability**HOSTS_PER_BLOCK
    h = np.arange(num_blocks + 1)
    pmf = stats.binom.pmf(h, num_blocks, p_block)
    packed = (h // blocks_per_slice) * blocks_per_slice
    return float(np.sum(pmf * packed) / num_blocks)


def spares_staircase(slice_chips: int,
                     num_blocks: int = MACHINE_BLOCKS_DEFAULT) -> float:
    """The paper's 'spares' goodput ceiling once ANY block is down.

    At 99.0%-99.5% host availability at least one of 1024 hosts is down
    essentially always, so at most num_blocks-1 blocks are usable: three 1K
    slices from a 4K machine (75%), one 2K slice (50%), one 3K slice (75%),
    and no 4K slice at all.
    """
    blocks_per_slice = slice_chips // CHIPS_PER_BLOCK
    usable = num_blocks - 1
    return (usable // blocks_per_slice) * blocks_per_slice / num_blocks

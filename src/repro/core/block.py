"""The 4x4x4 block: the electrically-cabled building unit (one rack).

A rack holds 16 tray-host pairs (64 chips).  Passive electrical cables form
the 4x4x4 mesh inside the rack; the 96 face links (6 faces x 16) convert to
optics at the tray connector and run to the OCS fabric (Sections 2.1-2.2).

A block is schedulable only when every one of its 16 hosts is up — the
host is the dominant availability problem (Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chip import CHIPS_PER_HOST, TPUv4Chip
from repro.core.tray import CHIPS_PER_TRAY, Tray

BLOCK_SIDE = 4
CHIPS_PER_BLOCK = BLOCK_SIDE**3     # 64
TRAYS_PER_BLOCK = CHIPS_PER_BLOCK // CHIPS_PER_TRAY  # 16
HOSTS_PER_BLOCK = TRAYS_PER_BLOCK  # one host per tray
FACE_LINKS_PER_BLOCK = 6 * BLOCK_SIDE * BLOCK_SIDE  # 96
INTERNAL_MESH_LINKS = 3 * (BLOCK_SIDE - 1) * BLOCK_SIDE * BLOCK_SIDE  # 144


@dataclass
class Block:
    """One rack: 64 chips, 16 trays, 16 hosts, plus health state."""

    block_id: int
    trays: list[Tray] = field(default_factory=list)
    chips: list[TPUv4Chip] = field(default_factory=list)
    host_up: list[bool] = field(default_factory=list)
    in_use: bool = False

    @classmethod
    def build(cls, block_id: int) -> "Block":
        """Construct a fully-populated healthy block."""
        block = cls(block_id=block_id)
        host_base = block_id * HOSTS_PER_BLOCK
        chip_base = block_id * CHIPS_PER_BLOCK
        # Trays tile the block as 4 z-planes of 2x2 chip quads.
        for tray_index in range(TRAYS_PER_BLOCK):
            host_id = host_base + tray_index
            tray = Tray(tray_id=host_id, host_id=host_id)
            block.trays.append(tray)
            block.host_up.append(True)
        for local_id in range(CHIPS_PER_BLOCK):
            coords = (local_id // 16, (local_id // 4) % 4, local_id % 4)
            tray_index = local_id // CHIPS_PER_TRAY
            chip = TPUv4Chip(chip_id=chip_base + local_id,
                             block_id=block_id,
                             host_id=host_base + tray_index,
                             coords=coords)
            block.chips.append(chip)
            block.trays[tray_index].chips.append(chip)
        return block

    @property
    def num_hosts(self) -> int:
        """CPU hosts in the rack."""
        return len(self.host_up)

    @property
    def is_healthy(self) -> bool:
        """Schedulable: every host must be up (4 chips die with a host)."""
        return all(self.host_up)

    @property
    def available(self) -> bool:
        """Healthy and not already part of a slice."""
        return self.is_healthy and not self.in_use

    def fail_host(self, local_host: int) -> None:
        """Mark one of the block's 16 hosts down."""
        self.host_up[local_host] = False

    def repair_all(self) -> None:
        """Bring every host back up."""
        for i in range(len(self.host_up)):
            self.host_up[i] = True

    @property
    def face_links(self) -> int:
        """Optical links leaving the rack."""
        return FACE_LINKS_PER_BLOCK

    @property
    def internal_links(self) -> int:
        """Electrical mesh links inside the rack."""
        return INTERNAL_MESH_LINKS

"""Slice-shape rules (paper Sections 2.5, 2.8, 2.9, Table 2).

The software scheduler requires shapes with x <= y <= z.  Shapes at or
above one block must be 4i x 4j x 4k ("slices don't even need to be a power
of 2").  Sub-block shapes live inside one block's mesh, with every
dimension a divisor of 4.  Twistable shapes are n*n*2n or n*2n*2n with
n >= 4; Table 2 tags them `_T` (twisted) or `_NT` (twistable but untwisted).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import SchedulingError
from repro.topology.builder import BLOCK_SIDE, is_block_multiple
from repro.topology.twisted import is_twistable

SliceShape = tuple[int, int, int]
_SUB_BLOCK_DIMS = (1, 2, 4)


@lru_cache(maxsize=None)
def canonical_shape(shape: SliceShape) -> SliceShape:
    """Sort dimensions ascending, the scheduler's x <= y <= z convention.

    Memoized: a pure tuple-to-tuple map that the dispatch loop calls
    for every placement attempt, and a fleet workload only ever draws
    a few dozen distinct shapes.
    """
    dims = tuple(sorted(int(d) for d in shape))
    if len(dims) != 3 or any(d < 1 for d in dims):
        raise SchedulingError(f"invalid slice shape {shape}")
    return dims  # type: ignore[return-value]


def is_legal_shape(shape: SliceShape) -> bool:
    """True when the machine can provision the shape.

    >>> is_legal_shape((4, 4, 12)), is_legal_shape((3, 4, 4))
    (True, False)
    """
    try:
        dims = canonical_shape(shape)
    except SchedulingError:
        return False
    if is_block_multiple(dims):
        return True
    # Sub-block slices must fit inside one 4x4x4 block cleanly.
    return all(d in _SUB_BLOCK_DIMS for d in dims) and max(dims) <= BLOCK_SIDE \
        and not is_block_multiple(dims)


def blocks_needed(shape: SliceShape) -> int:
    """4x4x4 blocks consumed by a slice (sub-block slices use one block)."""
    dims = canonical_shape(shape)
    if not is_legal_shape(dims):
        raise SchedulingError(f"illegal slice shape {dims}")
    if not is_block_multiple(dims):
        return 1
    return (dims[0] // BLOCK_SIDE) * (dims[1] // BLOCK_SIDE) * \
        (dims[2] // BLOCK_SIDE)


def block_grid(shape: SliceShape) -> tuple[int, int, int]:
    """The slice's extent measured in blocks."""
    dims = canonical_shape(shape)
    if not is_block_multiple(dims):
        raise SchedulingError(f"{dims} is a sub-block shape")
    return (dims[0] // BLOCK_SIDE, dims[1] // BLOCK_SIDE,
            dims[2] // BLOCK_SIDE)


def slice_label(shape: SliceShape, twisted: bool | None = None) -> str:
    """Table 2 notation: '4x4x8_T', '4x4x8_NT', or plain '8x8x8'.

    `twisted=None` labels untwistable shapes; for twistable shapes pass the
    user's choice.
    """
    dims = canonical_shape(shape)
    text = "x".join(str(d) for d in dims)
    if is_twistable(dims):
        if twisted is None:
            raise SchedulingError(
                f"{text} is twistable; specify twisted=True/False")
        return text + ("_T" if twisted else "_NT")
    if twisted:
        raise SchedulingError(f"{text} is not twistable")
    return text


def parse_shape(label: str) -> tuple[SliceShape, bool]:
    """Parse Table 2 notation back to (shape, twisted).

    >>> parse_shape('4x4x8_T')
    ((4, 4, 8), True)
    """
    text = label.strip()
    twisted = False
    if text.endswith("_T"):
        twisted, text = True, text[:-2]
    elif text.endswith("_NT"):
        twisted, text = False, text[:-3]
    try:
        dims = tuple(int(part) for part in text.split("x"))
    except ValueError as exc:
        raise SchedulingError(f"cannot parse slice label {label!r}") from exc
    shape = canonical_shape(dims)  # also validates rank
    if twisted and not is_twistable(shape):
        raise SchedulingError(f"label {label!r} marks untwistable shape _T")
    return shape, twisted


@dataclass(frozen=True)
class SliceClass:
    """Classification of a slice shape for Table 2 / Section 2.9 stats."""

    shape: SliceShape
    chips: int
    sub_block: bool
    twistable: bool
    twisted: bool

    @property
    def category(self) -> str:
        """One of 'sub-block mesh', 'twisted torus', 'twistable untwisted',
        'regular torus'."""
        if self.sub_block:
            return "sub-block mesh"
        if self.twisted:
            return "twisted torus"
        if self.twistable:
            return "twistable untwisted"
        return "regular torus"


def classify_slice(shape: SliceShape, twisted: bool = False) -> SliceClass:
    """Classify a shape the way Section 2.9 buckets production slices."""
    dims = canonical_shape(shape)
    if not is_legal_shape(dims):
        raise SchedulingError(f"illegal slice shape {dims}")
    sub_block = not is_block_multiple(dims)
    twistable = is_twistable(dims)
    if twisted and not twistable:
        raise SchedulingError(f"{dims} cannot twist")
    return SliceClass(shape=dims, chips=dims[0] * dims[1] * dims[2],
                      sub_block=sub_block, twistable=twistable,
                      twisted=twisted)


def legal_block_shapes(num_blocks: int) -> list[SliceShape]:
    """Every x<=y<=z block-multiple shape using exactly `num_blocks` blocks.

    >>> legal_block_shapes(2)
    [(4, 4, 8)]
    """
    shapes = []
    for i in range(1, num_blocks + 1):
        if num_blocks % i:
            continue
        for j in range(i, num_blocks + 1):
            if (num_blocks // i) % j:
                continue
            k = num_blocks // (i * j)
            if k >= j:
                shapes.append((4 * i, 4 * j, 4 * k))
    return sorted(shapes)

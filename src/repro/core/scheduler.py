"""Slice placement: OCS-reconfigurable versus statically-wired machines.

The OCS benefit (Section 2.5): a slice needs any-N healthy blocks, "picked
from anywhere in the supercomputer".  A statically-cabled machine (the
TPU v3 situation, and Figure 4's "statically connected" baseline) must find
a *contiguous cuboid* of healthy blocks in the fixed block grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from repro.core.slicing import (SliceShape, blocks_needed, block_grid,
                                canonical_shape, is_legal_shape)
from repro.errors import SchedulingError
from repro.topology.builder import is_block_multiple


class PlacementPolicy(Enum):
    """How slices map onto blocks."""

    OCS = "ocs"
    STATIC = "static"


class PlacementStrategy(Enum):
    """Which of the feasible placements a scheduler prefers.

    The policy (OCS vs static) defines what *can* host a slice; the
    strategy picks among the feasible placements:

    * FIRST_FIT — the first feasible placement in scan order.
    * BEST_FIT — the feasible placement leaving the least fragmentation
      (fewest free blocks stranded against the new slice).
    * DEFRAG — best-fit, plus (at the fleet level, OCS only) planned
      migrations that rewire the optical fabric to compact free blocks
      when a job would otherwise queue.  Within a single machine it
      places exactly like BEST_FIT.
    """

    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    DEFRAG = "defrag"


@dataclass
class ScheduleOutcome:
    """Result of packing as many equal slices as possible."""

    slice_shape: SliceShape
    policy: PlacementPolicy
    placements: list[list[int]] = field(default_factory=list)
    total_blocks: int = 0

    @property
    def num_slices(self) -> int:
        """Slices successfully placed."""
        return len(self.placements)

    @property
    def scheduled_blocks(self) -> int:
        """Blocks consumed by placed slices."""
        return sum(len(p) for p in self.placements)

    @property
    def goodput(self) -> float:
        """Scheduled fraction of the machine (the paper's goodput)."""
        return self.scheduled_blocks / self.total_blocks


def _grid_dims(num_blocks: int) -> tuple[int, int, int]:
    """The physical block grid of a machine (4x4x4 for 64 blocks)."""
    side = round(num_blocks ** (1 / 3))
    if side**3 != num_blocks:
        raise SchedulingError(
            f"static policy needs a cubic block grid; {num_blocks} blocks "
            f"is not a cube")
    return (side, side, side)


class SliceScheduler:
    """Greedy first-fit packer over a machine's block health map."""

    def __init__(self, healthy: Sequence[bool],
                 grid: tuple[int, int, int] | None = None) -> None:
        self.healthy = list(healthy)
        self.grid = grid if grid is not None else _grid_dims(len(self.healthy))
        if self.grid[0] * self.grid[1] * self.grid[2] != len(self.healthy):
            raise SchedulingError(
                f"grid {self.grid} does not cover {len(self.healthy)} blocks")

    @classmethod
    def from_machine(cls, machine) -> "SliceScheduler":
        """Build a scheduler view over a TPUv4Supercomputer."""
        return cls([b.available for b in machine.blocks])

    # -- helpers ---------------------------------------------------------------

    def _block_id(self, coord: tuple[int, int, int]) -> int:
        gx, gy, gz = self.grid
        return (coord[0] * gy + coord[1]) * gz + coord[2]

    def _cuboid_blocks(self, anchor: tuple[int, int, int],
                       extent: tuple[int, int, int]) -> list[int] | None:
        """Blocks of a contiguous cuboid, or None if it leaves the grid."""
        for axis in range(3):
            if anchor[axis] + extent[axis] > self.grid[axis]:
                return None
        blocks = []
        for dx in range(extent[0]):
            for dy in range(extent[1]):
                for dz in range(extent[2]):
                    blocks.append(self._block_id(
                        (anchor[0] + dx, anchor[1] + dy, anchor[2] + dz)))
        return blocks

    @staticmethod
    def _static_orientations(dims: SliceShape) -> list[tuple[int, int, int]]:
        """Distinct axis orientations of a shape's block-grid extent."""
        extent = block_grid(dims) if is_block_multiple(dims) else (1, 1, 1)
        return sorted(set(itertools.permutations(extent)))

    def _first_static_fit(self, free: Sequence[bool],
                          orientations: Sequence[tuple[int, int, int]]
                          ) -> list[int] | None:
        """First fully-free contiguous cuboid in any orientation."""
        for anchor in itertools.product(*(range(g) for g in self.grid)):
            for orientation in orientations:
                blocks = self._cuboid_blocks(anchor, orientation)
                if blocks is not None and all(free[b] for b in blocks):
                    return blocks
        return None

    def _fragmentation_score(self, free: Sequence[bool],
                             blocks: Sequence[int]) -> int:
        """Free blocks left face-adjacent to a candidate cuboid.

        Each such neighbor is capacity the placement strands against an
        occupied surface; best-fit minimizes it, tucking slices into
        pockets and corners so large contiguous regions survive.
        """
        taken = set(blocks)
        gx, gy, gz = self.grid
        score = 0
        for block in blocks:
            x, rem = divmod(block, gy * gz)
            y, z = divmod(rem, gz)
            for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                               (0, -1, 0), (0, 0, 1), (0, 0, -1)):
                nx, ny, nz = x + dx, y + dy, z + dz
                if not (0 <= nx < gx and 0 <= ny < gy and 0 <= nz < gz):
                    continue
                neighbor = (nx * gy + ny) * gz + nz
                if neighbor not in taken and free[neighbor]:
                    score += 1
        return score

    def _best_static_fit(self, free: Sequence[bool],
                         orientations: Sequence[tuple[int, int, int]]
                         ) -> list[int] | None:
        """The fully-free cuboid with the lowest fragmentation score.

        Ties resolve to the earliest anchor/orientation in scan order,
        so best-fit is exactly as deterministic as first-fit.
        """
        best: list[int] | None = None
        best_score = -1
        for anchor in itertools.product(*(range(g) for g in self.grid)):
            for orientation in orientations:
                blocks = self._cuboid_blocks(anchor, orientation)
                if blocks is None or not all(free[b] for b in blocks):
                    continue
                score = self._fragmentation_score(free, blocks)
                if best is None or score < best_score:
                    best, best_score = blocks, score
        return best

    # -- packing -----------------------------------------------------------------

    def place_one(self, shape: SliceShape, policy: PlacementPolicy,
                  strategy: PlacementStrategy = PlacementStrategy.FIRST_FIT
                  ) -> list[int] | None:
        """Blocks for a single `shape` slice, or None when it cannot fit.

        The fleet scheduler's fast path: unlike :meth:`pack` it stops at
        one placement instead of filling the machine.  Under OCS any
        healthy blocks are equivalent (Section 2.5), so the strategy
        only changes which cuboid a *static* machine picks.
        """
        dims = canonical_shape(shape)
        if not is_legal_shape(dims):
            raise SchedulingError(f"illegal slice shape {dims}")
        if policy is PlacementPolicy.OCS:
            per_slice = blocks_needed(dims)
            pool = [i for i, ok in enumerate(self.healthy) if ok]
            return pool[:per_slice] if len(pool) >= per_slice else None
        orientations = self._static_orientations(dims)
        if strategy is PlacementStrategy.FIRST_FIT:
            return self._first_static_fit(self.healthy, orientations)
        return self._best_static_fit(self.healthy, orientations)

    def pack(self, shape: SliceShape,
             policy: PlacementPolicy) -> ScheduleOutcome:
        """Place as many `shape` slices as possible; greedy, deterministic."""
        dims = canonical_shape(shape)
        if not is_legal_shape(dims):
            raise SchedulingError(f"illegal slice shape {dims}")
        outcome = ScheduleOutcome(slice_shape=dims, policy=policy,
                                  total_blocks=len(self.healthy))
        free = list(self.healthy)
        if policy is PlacementPolicy.OCS:
            per_slice = blocks_needed(dims)
            pool = [i for i, ok in enumerate(free) if ok]
            while len(pool) >= per_slice:
                outcome.placements.append(pool[:per_slice])
                pool = pool[per_slice:]
            return outcome

        # Static: contiguous cuboids, any axis orientation, no wraparound.
        orientations = self._static_orientations(dims)
        while True:
            blocks = self._first_static_fit(free, orientations)
            if blocks is None:
                return outcome
            for b in blocks:
                free[b] = False
            outcome.placements.append(blocks)

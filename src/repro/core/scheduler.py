"""Slice placement: OCS-reconfigurable versus statically-wired machines.

The OCS benefit (Section 2.5): a slice needs any-N healthy blocks, "picked
from anywhere in the supercomputer".  A statically-cabled machine (the
TPU v3 situation, and Figure 4's "statically connected" baseline) must find
a *contiguous cuboid* of healthy blocks in the fixed block grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from functools import lru_cache
from typing import Mapping, Sequence

from repro.core.slicing import (SliceShape, blocks_needed, block_grid,
                                canonical_shape, is_legal_shape)
from repro.errors import SchedulingError
from repro.ocs.reconfigure import grid_adjacency_indices
from repro.topology.builder import is_block_multiple


class PlacementPolicy(Enum):
    """How slices map onto blocks."""

    OCS = "ocs"
    STATIC = "static"


class PlacementStrategy(Enum):
    """Which of the feasible placements a scheduler prefers.

    The policy (OCS vs static) defines what *can* host a slice; the
    strategy picks among the feasible placements:

    * FIRST_FIT — the first feasible placement in scan order.
    * BEST_FIT — the feasible placement leaving the least fragmentation
      (fewest free blocks stranded against the new slice).
    * DEFRAG — best-fit, plus (at the fleet level, OCS only) planned
      migrations that rewire the optical fabric to compact free blocks
      when a job would otherwise queue.  Within a single machine it
      places exactly like BEST_FIT.
    """

    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    DEFRAG = "defrag"


@dataclass
class ScheduleOutcome:
    """Result of packing as many equal slices as possible."""

    slice_shape: SliceShape
    policy: PlacementPolicy
    placements: list[list[int]] = field(default_factory=list)
    total_blocks: int = 0

    @property
    def num_slices(self) -> int:
        """Slices successfully placed."""
        return len(self.placements)

    @property
    def scheduled_blocks(self) -> int:
        """Blocks consumed by placed slices."""
        return sum(len(p) for p in self.placements)

    @property
    def goodput(self) -> float:
        """Scheduled fraction of the machine (the paper's goodput)."""
        return self.scheduled_blocks / self.total_blocks


@dataclass(frozen=True)
class MultiRegionPlacement:
    """One slice placed across several regions (pods) of a machine.

    The machine-wide generalization of a block list: the slice's virtual
    block grid is laid out row-major over *slots*, each slot hosted by
    some region.  Consecutive slots stay region-contiguous, so
    ``region_blocks`` (region id, blocks taken) fully determines which
    slot lives where.  Grid adjacencies whose endpoints sit in different
    regions must ride the machine-level OCS trunk layer; they are the
    placement's trunk demand, kept in slot indices so the fabric layer
    (:mod:`repro.fleet.machine`) can map them to physical blocks.
    """

    shape: SliceShape
    grid: tuple[int, int, int]
    region_blocks: tuple[tuple[int, int], ...]
    trunk_adjacencies: tuple[tuple[int, int, int], ...]

    @property
    def num_blocks(self) -> int:
        """Blocks the slice occupies across all regions."""
        return sum(take for _, take in self.region_blocks)

    @property
    def num_regions(self) -> int:
        """Regions hosting at least one block."""
        return len(self.region_blocks)

    @property
    def spill(self) -> int:
        """Pods beyond the first — 0 for a single-pod placement."""
        return self.num_regions - 1

    @property
    def num_trunk_adjacencies(self) -> int:
        """Block adjacencies crossing regions (each is FACE_LINKS fibers)."""
        return len(self.trunk_adjacencies)

    @property
    def total_adjacencies(self) -> int:
        """All block adjacencies of the slice's torus (3 per block)."""
        return 3 * self.num_blocks

    @property
    def cross_fraction(self) -> float:
        """Share of the slice's links that traverse the trunk layer."""
        if self.total_adjacencies == 0:
            return 0.0
        return self.num_trunk_adjacencies / self.total_adjacencies

    def region_of_slot(self, slot: int) -> int:
        """The region hosting a virtual grid slot."""
        for region, take in self.region_blocks:
            if slot < take:
                return region
            slot -= take
        raise SchedulingError(f"slot {slot} outside the placement")

    def trunk_ports_by_region(self) -> dict[int, int]:
        """Trunk-port endpoints each region must terminate.

        Every cross-region adjacency lands one trunk port on each of its
        two regions (the light leaves one pod and enters the other).
        """
        ports: dict[int, int] = {region: 0
                                 for region, _ in self.region_blocks}
        for _, low, high in self.trunk_adjacencies:
            ports[self.region_of_slot(low)] += 1
            ports[self.region_of_slot(high)] += 1
        return ports


@lru_cache(maxsize=None)
def _trunk_layout(grid: tuple[int, int, int], takes: tuple[int, ...]
                  ) -> tuple[tuple[tuple[int, int, int], ...],
                             tuple[int, ...]]:
    """Trunk demand of a region-contiguous layout, by *run*, memoized.

    Which adjacencies cross a region boundary — and how many trunk
    ports each region terminates — depends only on where the contiguous
    runs of blocks break, i.e. on the grid and the tuple of per-region
    take counts, never on which regions the runs belong to (regions in
    an assignment are distinct, so distinct runs are distinct owners).
    Best-fit enumerates hundreds of candidate assignments per placement
    that share a handful of take profiles, so the layout walk is cached
    on (grid, takes) and candidates pay a dict lookup.

    Returns (trunk adjacencies in slot indices, trunk-port endpoints
    per run index).
    """
    owner: list[int] = []
    for run, take in enumerate(takes):
        owner.extend([run] * take)
    trunks = tuple((dim, low, high)
                   for dim, low, high in grid_adjacency_indices(grid)
                   if owner[low] != owner[high])
    ports = [0] * len(takes)
    for _, low, high in trunks:
        ports[owner[low]] += 1
        ports[owner[high]] += 1
    return trunks, tuple(ports)


def _greedy_take(pool: Sequence[tuple[int, int]],
                 needed: int) -> list[tuple[int, int]] | None:
    """Fill `needed` blocks from `pool` in order; None if it cannot."""
    assignment: list[tuple[int, int]] = []
    remaining = needed
    for region, free in pool:
        if remaining == 0:
            break
        take = min(free, remaining)
        if take > 0:
            assignment.append((region, take))
            remaining -= take
    return assignment if remaining == 0 else None


#: Feasible region subsets enumerated per placement before falling back
#: to the greedy pick — bounds best-fit's search on very wide fleets.
_SUBSET_ENUMERATION_CAP = 256


def plan_multi_region(shape: SliceShape,
                      free_by_region: Sequence[tuple[int, int]],
                      strategy: PlacementStrategy =
                      PlacementStrategy.FIRST_FIT,
                      *, trunk_budget: Mapping[int, int] | None = None
                      ) -> MultiRegionPlacement | None:
    """Place one block-multiple slice across regions, OCS style.

    `free_by_region` is (region id, free block count) per region — under
    OCS any free blocks of a region are equivalent (Section 2.5), so
    counts are the whole story and the caller resolves physical ids.
    `trunk_budget` caps the trunk ports each region may consume; layouts
    that would oversubscribe a region's trunks are rejected.

    Strategy is the topology policy: FIRST_FIT fills regions in the
    order given; BEST_FIT (and DEFRAG, which places like best-fit once
    migration is off the table) minimizes pod spill first, then trunk
    usage, then leftover free space in the touched regions.
    """
    dims = canonical_shape(shape)
    if not is_legal_shape(dims):
        raise SchedulingError(f"illegal slice shape {dims}")
    if not is_block_multiple(dims):
        return None  # sub-block slices live inside one block's mesh
    needed = blocks_needed(dims)
    grid = block_grid(dims)
    pool = [(region, free) for region, free in free_by_region if free > 0]
    if sum(free for _, free in pool) < needed:
        return None

    if strategy is PlacementStrategy.FIRST_FIT:
        candidates = [_greedy_take(pool, needed)]
    else:
        by_size = sorted(pool, key=lambda rf: (-rf[1], rf[0]))
        greedy = _greedy_take(by_size, needed)
        if greedy is None:  # pragma: no cover - total checked above
            return None
        k = len(greedy)
        # Bound the *enumeration itself*, not just the survivors: on a
        # very wide fleet C(n, k) explodes long before the feasibility
        # filter runs, so stop generating at the cap and fall back to
        # the greedy pick.
        subsets = list(itertools.islice(itertools.combinations(pool, k),
                                        _SUBSET_ENUMERATION_CAP + 1))
        if len(subsets) <= _SUBSET_ENUMERATION_CAP:
            candidates = [
                _greedy_take(sorted(subset,
                                    key=lambda rf: (-rf[1], rf[0])),
                             needed)
                for subset in subsets
                if sum(free for _, free in subset) >= needed] or [greedy]
        else:
            candidates = [greedy]

    free_of = dict(free_by_region)
    best: MultiRegionPlacement | None = None
    best_key: tuple | None = None
    for assignment in candidates:
        if assignment is None:
            continue
        trunks, ports_by_run = _trunk_layout(
            grid, tuple(take for _, take in assignment))
        if trunk_budget is not None and any(
                ports > trunk_budget.get(region, 0)
                for (region, _), ports in zip(assignment, ports_by_run)):
            continue
        leftover = sum(free_of[region] for region, _ in assignment) - needed
        key = (len(assignment) - 1, len(trunks), leftover,
               tuple(region for region, _ in assignment))
        if best is None or key < best_key:
            best = MultiRegionPlacement(
                shape=dims, grid=grid, region_blocks=tuple(assignment),
                trunk_adjacencies=trunks)
            best_key = key
    return best


def plan_multi_region_hypothetical(
        shape: SliceShape,
        free_by_region: Sequence[tuple[int, int]],
        strategy: PlacementStrategy = PlacementStrategy.FIRST_FIT,
        *, trunk_budget: Mapping[int, int] | None = None,
        block_credits: Mapping[int, int] | None = None
        ) -> MultiRegionPlacement | None:
    """Place a slice against a *hypothetical* machine state.

    The contention-resolution planner's what-if front door: the caller
    holds the live ``free_by_region`` and a set of candidate victims
    (jobs it could evict or migrate away), expressed as per-region
    ``block_credits`` — blocks that *would* free if the victims went —
    plus a what-if ``trunk_budget`` (e.g. ``MachineFabric.
    trunk_budget_excluding`` with the victims' trunk holdings credited
    back).  The credits are merged into the pools and the ordinary
    planner runs; nothing is mutated, so the caller can probe victim
    sets until one yields a placement and only then evict for real.
    """
    credited = [(region, free + (block_credits or {}).get(region, 0))
                for region, free in free_by_region]
    return plan_multi_region(shape, credited, strategy,
                             trunk_budget=trunk_budget)


def _grid_dims(num_blocks: int) -> tuple[int, int, int]:
    """The physical block grid of a machine (4x4x4 for 64 blocks)."""
    side = round(num_blocks ** (1 / 3))
    if side**3 != num_blocks:
        raise SchedulingError(
            f"static policy needs a cubic block grid; {num_blocks} blocks "
            f"is not a cube")
    return (side, side, side)


class SliceScheduler:
    """Greedy first-fit packer over a machine's block health map."""

    def __init__(self, healthy: Sequence[bool],
                 grid: tuple[int, int, int] | None = None) -> None:
        self.healthy = list(healthy)
        self.grid = grid if grid is not None else _grid_dims(len(self.healthy))
        if self.grid[0] * self.grid[1] * self.grid[2] != len(self.healthy):
            raise SchedulingError(
                f"grid {self.grid} does not cover {len(self.healthy)} blocks")

    @classmethod
    def from_machine(cls, machine) -> "SliceScheduler":
        """Build a scheduler view over a TPUv4Supercomputer."""
        return cls([b.available for b in machine.blocks])

    # -- helpers ---------------------------------------------------------------

    def _block_id(self, coord: tuple[int, int, int]) -> int:
        gx, gy, gz = self.grid
        return (coord[0] * gy + coord[1]) * gz + coord[2]

    def _cuboid_blocks(self, anchor: tuple[int, int, int],
                       extent: tuple[int, int, int]) -> list[int] | None:
        """Blocks of a contiguous cuboid, or None if it leaves the grid."""
        for axis in range(3):
            if anchor[axis] + extent[axis] > self.grid[axis]:
                return None
        blocks = []
        for dx in range(extent[0]):
            for dy in range(extent[1]):
                for dz in range(extent[2]):
                    blocks.append(self._block_id(
                        (anchor[0] + dx, anchor[1] + dy, anchor[2] + dz)))
        return blocks

    @staticmethod
    def _static_orientations(dims: SliceShape) -> list[tuple[int, int, int]]:
        """Distinct axis orientations of a shape's block-grid extent."""
        extent = block_grid(dims) if is_block_multiple(dims) else (1, 1, 1)
        return sorted(set(itertools.permutations(extent)))

    def _first_static_fit(self, free: Sequence[bool],
                          orientations: Sequence[tuple[int, int, int]]
                          ) -> list[int] | None:
        """First fully-free contiguous cuboid in any orientation."""
        for anchor in itertools.product(*(range(g) for g in self.grid)):
            for orientation in orientations:
                blocks = self._cuboid_blocks(anchor, orientation)
                if blocks is not None and all(free[b] for b in blocks):
                    return blocks
        return None

    def _fragmentation_score(self, free: Sequence[bool],
                             blocks: Sequence[int]) -> int:
        """Free blocks left face-adjacent to a candidate cuboid.

        Each such neighbor is capacity the placement strands against an
        occupied surface; best-fit minimizes it, tucking slices into
        pockets and corners so large contiguous regions survive.
        """
        taken = set(blocks)
        gx, gy, gz = self.grid
        score = 0
        for block in blocks:
            x, rem = divmod(block, gy * gz)
            y, z = divmod(rem, gz)
            for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                               (0, -1, 0), (0, 0, 1), (0, 0, -1)):
                nx, ny, nz = x + dx, y + dy, z + dz
                if not (0 <= nx < gx and 0 <= ny < gy and 0 <= nz < gz):
                    continue
                neighbor = (nx * gy + ny) * gz + nz
                if neighbor not in taken and free[neighbor]:
                    score += 1
        return score

    def _best_static_fit(self, free: Sequence[bool],
                         orientations: Sequence[tuple[int, int, int]]
                         ) -> list[int] | None:
        """The fully-free cuboid with the lowest fragmentation score.

        Ties resolve to the earliest anchor/orientation in scan order,
        so best-fit is exactly as deterministic as first-fit.
        """
        best: list[int] | None = None
        best_score = -1
        for anchor in itertools.product(*(range(g) for g in self.grid)):
            for orientation in orientations:
                blocks = self._cuboid_blocks(anchor, orientation)
                if blocks is None or not all(free[b] for b in blocks):
                    continue
                score = self._fragmentation_score(free, blocks)
                if best is None or score < best_score:
                    best, best_score = blocks, score
        return best

    # -- packing -----------------------------------------------------------------

    def place_one(self, shape: SliceShape, policy: PlacementPolicy,
                  strategy: PlacementStrategy = PlacementStrategy.FIRST_FIT
                  ) -> list[int] | None:
        """Blocks for a single `shape` slice, or None when it cannot fit.

        The fleet scheduler's fast path: unlike :meth:`pack` it stops at
        one placement instead of filling the machine.  Under OCS any
        healthy blocks are equivalent (Section 2.5), so the strategy
        only changes which cuboid a *static* machine picks.
        """
        dims = canonical_shape(shape)
        if not is_legal_shape(dims):
            raise SchedulingError(f"illegal slice shape {dims}")
        if policy is PlacementPolicy.OCS:
            per_slice = blocks_needed(dims)
            pool = [i for i, ok in enumerate(self.healthy) if ok]
            return pool[:per_slice] if len(pool) >= per_slice else None
        orientations = self._static_orientations(dims)
        if strategy is PlacementStrategy.FIRST_FIT:
            return self._first_static_fit(self.healthy, orientations)
        return self._best_static_fit(self.healthy, orientations)

    @staticmethod
    def place_multi(shape: SliceShape,
                    free_by_region: Sequence[tuple[int, int]],
                    strategy: PlacementStrategy =
                    PlacementStrategy.FIRST_FIT,
                    *, trunk_budget: Mapping[int, int] | None = None
                    ) -> MultiRegionPlacement | None:
        """Machine-wide placement across regions (pods) under OCS.

        Delegates to :func:`plan_multi_region`; lives here so the
        placement stack has one front door for both the single-machine
        and the machine-wide outcome.
        """
        return plan_multi_region(shape, free_by_region, strategy,
                                 trunk_budget=trunk_budget)

    def pack(self, shape: SliceShape,
             policy: PlacementPolicy) -> ScheduleOutcome:
        """Place as many `shape` slices as possible; greedy, deterministic."""
        dims = canonical_shape(shape)
        if not is_legal_shape(dims):
            raise SchedulingError(f"illegal slice shape {dims}")
        outcome = ScheduleOutcome(slice_shape=dims, policy=policy,
                                  total_blocks=len(self.healthy))
        free = list(self.healthy)
        if policy is PlacementPolicy.OCS:
            per_slice = blocks_needed(dims)
            pool = [i for i, ok in enumerate(free) if ok]
            while len(pool) >= per_slice:
                outcome.placements.append(pool[:per_slice])
                pool = pool[per_slice:]
            return outcome

        # Static: contiguous cuboids, any axis orientation, no wraparound.
        orientations = self._static_orientations(dims)
        while True:
            blocks = self._first_static_fit(free, orientations)
            if blocks is None:
                return outcome
            for b in blocks:
                free[b] = False
            outcome.placements.append(blocks)

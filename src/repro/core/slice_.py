"""A provisioned slice: blocks + OCS wiring + chip-level topology."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.slicing import SliceShape, slice_label
from repro.ocs.reconfigure import SliceWiring
from repro.topology.base import Topology
from repro.topology.twisted import is_twistable


@dataclass
class Slice:
    """A running slice of the supercomputer.

    Attributes:
        name: user-visible identifier.
        shape: chips per dimension (canonical x <= y <= z).
        twisted: whether the twisted-torus wiring was requested.
        block_ids: physical blocks hosting the slice.
        wiring: the OCS circuits realizing the topology.
    """

    name: str
    shape: SliceShape
    twisted: bool
    block_ids: list[int]
    wiring: SliceWiring

    @property
    def num_chips(self) -> int:
        """Chips in the slice."""
        return self.shape[0] * self.shape[1] * self.shape[2]

    @property
    def topology(self) -> Topology:
        """The chip-level interconnect graph."""
        return self.wiring.topology

    @property
    def label(self) -> str:
        """Table 2 style label ('4x4x8_T', '8x8x8', ...)."""
        twisted = self.twisted if is_twistable(self.shape) else None
        return slice_label(self.shape, twisted)

    def __repr__(self) -> str:
        return (f"<Slice {self.name}: {self.label}, {self.num_chips} chips, "
                f"{len(self.block_ids)} blocks>")

"""The 4-chip tray (printed circuit board).

The PCB embeds 4 ICI links connecting its chips as a 2x2 mesh; the
remaining 16 links leave through bottom-side OSFP connectors toward other
trays (paper Figure 2).  Each tray pairs with one CPU host.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chip import ICI_LINKS_PER_CHIP, TPUv4Chip

CHIPS_PER_TRAY = 4
PCB_LINKS_PER_TRAY = 4           # the 2x2 mesh: 4 edges
EXTERNAL_LINKS_PER_TRAY = (CHIPS_PER_TRAY * ICI_LINKS_PER_CHIP
                           - 2 * PCB_LINKS_PER_TRAY)  # 16 OSFP ports


@dataclass
class Tray:
    """Four chips on one board, plus its host binding."""

    tray_id: int
    host_id: int
    chips: list[TPUv4Chip] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.chips) not in (0, CHIPS_PER_TRAY):
            raise ValueError(
                f"a tray holds {CHIPS_PER_TRAY} chips, got {len(self.chips)}")

    @property
    def pcb_links(self) -> int:
        """Links embedded in the PCB (2x2 mesh)."""
        return PCB_LINKS_PER_TRAY

    @property
    def external_links(self) -> int:
        """OSFP links leaving the tray."""
        return EXTERNAL_LINKS_PER_TRAY

    def pcb_mesh_edges(self) -> list[tuple[int, int]]:
        """The 2x2 mesh as local chip-index pairs (no diagonal)."""
        return [(0, 1), (0, 2), (1, 3), (2, 3)]

"""The 4096-chip TPU v4 supercomputer.

64 blocks (racks) joined by the 48-switch OCS fabric.  The machine object
owns block health state and live slices; placement freedom — any healthy
blocks can host a slice — is the OCS scheduling benefit of Section 2.5.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.block import (Block, CHIPS_PER_BLOCK, HOSTS_PER_BLOCK)
from repro.core.slice_ import Slice
from repro.core.slicing import (SliceShape, blocks_needed, canonical_shape,
                                is_legal_shape)
from repro.errors import SchedulingError
from repro.ocs.fabric import OCSFabric
from repro.ocs.reconfigure import (BlockCoord, default_placement,
                                   realize_slice, release_slice)
from repro.sim.rng import make_rng
from repro.topology.builder import BLOCK_SIDE, is_block_multiple

MACHINE_BLOCKS = 64
MACHINE_CHIPS = MACHINE_BLOCKS * CHIPS_PER_BLOCK  # 4096


class TPUv4Supercomputer:
    """The full machine: blocks, fabric, and live slices."""

    def __init__(self, num_blocks: int = MACHINE_BLOCKS) -> None:
        if num_blocks < 1:
            raise SchedulingError("a machine needs at least one block")
        self.blocks = [Block.build(block_id) for block_id in range(num_blocks)]
        self.fabric = OCSFabric(num_blocks=num_blocks)
        self.fabric.validate_capacity()
        self.slices: dict[str, Slice] = {}
        self._slice_counter = itertools.count()

    # -- inventory ---------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Racks in the machine."""
        return len(self.blocks)

    @property
    def num_chips(self) -> int:
        """Total chips."""
        return self.num_blocks * CHIPS_PER_BLOCK

    @property
    def num_hosts(self) -> int:
        """Total CPU hosts (4 chips per host)."""
        return self.num_blocks * HOSTS_PER_BLOCK

    def healthy_blocks(self) -> list[Block]:
        """Blocks with all hosts up."""
        return [b for b in self.blocks if b.is_healthy]

    def available_blocks(self) -> list[Block]:
        """Healthy blocks not already in a slice."""
        return [b for b in self.blocks if b.available]

    # -- failures -------------------------------------------------------------------

    def inject_host_failures(self, availability: float,
                             seed: int | np.random.Generator = 0) -> int:
        """Take each host down independently with prob 1-availability.

        Returns the number of failed hosts.
        """
        if not 0.0 < availability <= 1.0:
            raise SchedulingError(
                f"availability must be in (0, 1], got {availability}")
        rng = make_rng(seed)
        failures = 0
        for block in self.blocks:
            block.repair_all()
            downs = rng.random(block.num_hosts) > availability
            for host_index in np.nonzero(downs)[0]:
                block.fail_host(int(host_index))
                failures += 1
        return failures

    def repair_all(self) -> None:
        """Bring every host back up."""
        for block in self.blocks:
            block.repair_all()

    # -- slice lifecycle ---------------------------------------------------------------

    def create_slice(self, shape: SliceShape, *, twisted: bool = False,
                     block_ids: list[int] | None = None,
                     name: str | None = None) -> Slice:
        """Provision a slice on healthy free blocks and program the OCSes.

        Args:
            shape: requested geometry (any dimension order).
            twisted: request the twisted torus.
            block_ids: explicit physical blocks (defaults to first-fit over
                available blocks — the OCS lets us pick ANY of them).
            name: optional slice name.
        """
        dims = canonical_shape(shape)
        if not is_legal_shape(dims):
            raise SchedulingError(f"illegal slice shape {dims}")
        needed = blocks_needed(dims)
        if block_ids is None:
            candidates = self.available_blocks()
            if len(candidates) < needed:
                raise SchedulingError(
                    f"need {needed} blocks, only {len(candidates)} available")
            block_ids = [b.block_id for b in candidates[:needed]]
        else:
            if len(block_ids) != needed:
                raise SchedulingError(
                    f"shape {dims} needs {needed} blocks, got {len(block_ids)}")
            for block_id in block_ids:
                if not self.blocks[block_id].available:
                    raise SchedulingError(
                        f"block {block_id} is unhealthy or busy")

        placement = self._placement_for(dims, block_ids)
        wiring = realize_slice(self.fabric, dims, twisted=twisted,
                               placement=placement)
        if name is None:
            name = f"slice-{next(self._slice_counter)}"
        if name in self.slices:
            raise SchedulingError(f"slice name {name!r} already in use")
        for block_id in block_ids:
            self.blocks[block_id].in_use = True
        created = Slice(name=name, shape=dims, twisted=twisted,
                        block_ids=list(block_ids), wiring=wiring)
        self.slices[name] = created
        return created

    def _placement_for(self, dims: SliceShape,
                       block_ids: list[int]) -> dict[BlockCoord, int] | None:
        if not is_block_multiple(dims):
            return None
        coords = sorted(default_placement(dims))
        return {coord: block_id for coord, block_id in zip(coords, block_ids)}

    def release(self, slice_or_name: Slice | str) -> None:
        """Tear down a slice's circuits and free its blocks."""
        name = slice_or_name if isinstance(slice_or_name, str) \
            else slice_or_name.name
        if name not in self.slices:
            raise SchedulingError(f"unknown slice {name!r}")
        victim = self.slices.pop(name)
        release_slice(self.fabric, victim.wiring)
        for block_id in victim.block_ids:
            self.blocks[block_id].in_use = False

    def scheduled_chips(self) -> int:
        """Chips currently inside live slices."""
        # detlint: ignore[D005] integer chip counts; order-free sum
        return sum(s.num_chips for s in self.slices.values())

    def utilization(self) -> float:
        """Scheduled fraction of the machine."""
        return self.scheduled_chips() / self.num_chips

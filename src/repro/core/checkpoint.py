"""Checkpoint-interval policy for everything-must-work training (Sec. 1).

"Reaching such a scale raises reliability problems that are
particularly compounded by the HPC-style, checkpoint/restore,
everything-must-work way that DNN training is performed."

With thousands of hosts, the *system* MTBF is the per-host MTBF divided
by the host count — a 4K-chip slice with 1K hosts at 120-day host MTBF
fails about every three hours.  The classic Young/Daly analysis then
fixes the checkpoint cadence: checkpoint too often and the writes eat
the run; too rarely and each failure replays hours of work.  This
module provides the closed-form optimum, the overhead curve around it,
and a failure-injection Monte Carlo that validates the closed form —
the policy layer under :mod:`repro.core.trainingrun`'s 50-day PaLM-style
simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.rng import make_rng
from repro.units import DAY, HOUR, MINUTE


@dataclass(frozen=True)
class CheckpointParams:
    """Reliability and cost constants of one training deployment.

    Attributes:
        num_hosts: CPU hosts under the job (4 chips per host).
        host_mtbf_seconds: mean time between failures of one host.
        checkpoint_seconds: wall-clock cost of writing one checkpoint.
        restore_seconds: detect + reschedule + reload after a failure.
    """

    num_hosts: int = 768              # a 3072-chip slice
    host_mtbf_seconds: float = 120 * DAY
    checkpoint_seconds: float = 30.0
    restore_seconds: float = 8 * MINUTE

    def __post_init__(self) -> None:
        if self.num_hosts < 1:
            raise ConfigurationError("need at least one host")
        if self.host_mtbf_seconds <= 0:
            raise ConfigurationError("host MTBF must be > 0")
        if self.checkpoint_seconds < 0 or self.restore_seconds < 0:
            raise ConfigurationError("costs must be >= 0")

    @property
    def system_mtbf_seconds(self) -> float:
        """MTBF of the whole slice: any host down interrupts the job."""
        return self.host_mtbf_seconds / self.num_hosts


def optimal_interval(params: CheckpointParams) -> float:
    """Young/Daly optimum: sqrt(2 * checkpoint_cost * system_MTBF)."""
    if params.checkpoint_seconds == 0:
        raise ConfigurationError(
            "zero-cost checkpoints have no finite optimal interval")
    return math.sqrt(2 * params.checkpoint_seconds
                     * params.system_mtbf_seconds)


def expected_overhead(interval: float, params: CheckpointParams) -> float:
    """Expected fraction of wall-clock lost at a checkpoint cadence.

    Three terms: checkpoint writes (C/tau), expected replay per failure
    (tau/2 each MTBF), and restore per failure (R each MTBF).
    """
    if interval <= 0:
        raise ConfigurationError(f"interval must be > 0, got {interval}")
    mtbf = params.system_mtbf_seconds
    writes = params.checkpoint_seconds / interval
    replay = interval / (2 * mtbf)
    restore = params.restore_seconds / mtbf
    return min(1.0, writes + replay + restore)


def goodput_fraction(interval: float, params: CheckpointParams) -> float:
    """Useful-work fraction at a cadence (1 - expected overhead)."""
    return 1.0 - expected_overhead(interval, params)


@dataclass(frozen=True)
class IntervalSweepPoint:
    """One cadence in an overhead sweep."""

    interval_seconds: float
    overhead: float
    goodput: float
    is_optimal: bool


def sweep_intervals(params: CheckpointParams,
                    intervals: list[float] | None = None
                    ) -> list[IntervalSweepPoint]:
    """Overhead across cadences, the Young/Daly point marked.

    Default grid: 1 minute to 8 hours, log-spaced, plus the optimum.
    """
    if intervals is None:
        intervals = [MINUTE * 2 ** i for i in range(10)]  # 1 min .. ~8.5 h
    best = optimal_interval(params)
    grid = sorted(set(intervals) | {best})
    return [IntervalSweepPoint(
        interval_seconds=tau,
        overhead=expected_overhead(tau, params),
        goodput=goodput_fraction(tau, params),
        is_optimal=(tau == best)) for tau in grid]


@dataclass(frozen=True)
class MonteCarloOutcome:
    """Failure-injection measurement of one cadence."""

    interval_seconds: float
    duration_seconds: float
    failures: int
    lost_seconds: float

    @property
    def measured_goodput(self) -> float:
        """Useful fraction of the simulated run."""
        return 1.0 - self.lost_seconds / self.duration_seconds


def simulate_run(params: CheckpointParams, interval: float, *,
                 duration_seconds: float = 50 * DAY,
                 seed: int = 0) -> MonteCarloOutcome:
    """Failure-injection run: exponential failures against a cadence.

    Each failure rolls back to the last checkpoint boundary and pays the
    restore cost; checkpoint writes accrue continuously.  Used by tests
    to validate :func:`expected_overhead` end to end.
    """
    if interval <= 0 or duration_seconds <= 0:
        raise ConfigurationError("interval and duration must be > 0")
    rng = make_rng(seed)
    mtbf = params.system_mtbf_seconds
    clock = 0.0
    since_checkpoint = 0.0
    lost = 0.0
    failures = 0
    next_failure = rng.exponential(mtbf)
    while clock < duration_seconds:
        to_checkpoint = interval - since_checkpoint
        if clock + to_checkpoint < next_failure:
            clock += to_checkpoint
            lost += params.checkpoint_seconds
            clock += params.checkpoint_seconds
            since_checkpoint = 0.0
            continue
        # A failure lands inside this checkpoint interval.
        progressed = next_failure - clock
        clock = next_failure
        lost += since_checkpoint + progressed  # replayed work
        lost += params.restore_seconds
        clock += params.restore_seconds
        since_checkpoint = 0.0
        failures += 1
        next_failure = clock + rng.exponential(mtbf)
    return MonteCarloOutcome(interval_seconds=interval,
                             duration_seconds=clock,
                             failures=failures, lost_seconds=lost)


def policy_report(params: CheckpointParams | None = None) -> dict[str, float]:
    """Headline numbers for one deployment: MTBF, optimum, goodput."""
    params = params or CheckpointParams()
    best = optimal_interval(params)
    return {
        "system_mtbf_hours": params.system_mtbf_seconds / HOUR,
        "optimal_interval_minutes": best / MINUTE,
        "overhead_at_optimum": expected_overhead(best, params),
        "goodput_at_optimum": goodput_fraction(best, params),
    }

"""Long-run LLM training with checkpoint/restore (abstract + Section 9).

DNN training is "HPC-style, checkpoint/restore, everything-must-work"
(Section 1).  Over a 50-day run, hosts fail; each interruption costs the
work since the last checkpoint plus restore and — thanks to the OCS — a
milliseconds-scale reschedule onto healthy blocks instead of waiting for
repair.  The paper's headline: PaLM sustained 57.8% of peak FLOPS over
50 days, "~60% of peak" with OCS flexibility and availability.

The model composes:
  sustained MFU = step MFU x goodput availability x checkpoint overhead
where step MFU comes from the Table 3 class of tuned configurations and
the availability terms from the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import make_rng
from repro.units import DAY, HOUR, MINUTE


@dataclass(frozen=True)
class TrainingRunParams:
    """Knobs of the long-run simulation."""

    num_chips: int = 3072            # the practical 3K slice (Figure 4)
    duration_days: float = 50.0
    step_mfu: float = 0.67           # tuned-config compute efficiency
    host_mtbf_days: float = 120.0    # per host; ~0.4% unavailability
    checkpoint_interval: float = 30 * MINUTE
    checkpoint_write: float = 30.0   # seconds, async-capable
    restore_time: float = 8 * MINUTE  # detect + reschedule + reload
    ocs_reschedule: float = 60.0     # find blocks + program mirrors
    repair_wait_static: float = 2 * HOUR  # without OCS: wait for the host


@dataclass(frozen=True)
class TrainingRunOutcome:
    """Sustained efficiency over the run."""

    params: TrainingRunParams
    interruptions: int
    lost_seconds: float

    @property
    def availability(self) -> float:
        """Fraction of wall time doing forward/backward work (>= 0)."""
        total = self.params.duration_days * DAY
        checkpoint_tax = (self.params.checkpoint_write
                          / self.params.checkpoint_interval)
        productive = max(1.0 - self.lost_seconds / total, 0.0)
        return productive * (1.0 - checkpoint_tax)

    @property
    def sustained_mfu(self) -> float:
        """Average fraction of peak FLOPS over the whole run."""
        return self.params.step_mfu * self.availability


def simulate_training_run(params: TrainingRunParams | None = None, *,
                          with_ocs: bool = True,
                          seed: int = 0) -> TrainingRunOutcome:
    """Sample failures over the run and account the lost time.

    Each interruption loses: half a checkpoint interval of progress (on
    average), restore time, and either an OCS reschedule (seconds) or a
    repair wait (hours, the static machine's fate when no spare
    contiguous capacity exists).
    """
    params = params or TrainingRunParams()
    if params.num_chips < 1 or params.duration_days <= 0:
        raise ConfigurationError("need chips and a positive duration")
    rng = make_rng(seed)
    num_hosts = params.num_chips // 4
    # Poisson failures across the fleet for the run's duration.
    rate = num_hosts * params.duration_days / params.host_mtbf_days
    interruptions = int(rng.poisson(rate))
    rework = rng.uniform(0, params.checkpoint_interval,
                         size=interruptions).sum()
    recovery = params.ocs_reschedule if with_ocs \
        else params.repair_wait_static
    lost = rework + interruptions * (params.restore_time + recovery)
    return TrainingRunOutcome(params=params, interruptions=interruptions,
                              lost_seconds=float(lost))


def palm_style_summary(seed: int = 0) -> dict[str, float]:
    """The abstract's claim, quantified: ~60% of peak over 50 days."""
    ocs = simulate_training_run(with_ocs=True, seed=seed)
    static = simulate_training_run(with_ocs=False, seed=seed)
    return {
        "interruptions": float(ocs.interruptions),
        "ocs_sustained_mfu": ocs.sustained_mfu,
        "static_sustained_mfu": static.sustained_mfu,
        "paper_palm_mfu": 0.578,
    }

"""The TPU v4 chip as a structural element of the machine.

Performance-model details (FLOPS, HBM, CMEM) live in
:mod:`repro.chips.specs`; this module captures what the machine plane needs:
identity, placement, core counts, and ICI port budget (Table 4: 2
TensorCores, 4 SparseCores, 6 ICI links at 50 GB/s).
"""

from __future__ import annotations

from dataclasses import dataclass

TENSORCORES_PER_CHIP = 2
SPARSECORES_PER_CHIP = 4
ICI_LINKS_PER_CHIP = 6
ICI_LINK_BANDWIDTH = 50e9  # bytes/second per direction
CHIPS_PER_HOST = 4


@dataclass(frozen=True)
class TPUv4Chip:
    """One TPU v4 ASIC at a fixed position in the machine.

    Attributes:
        chip_id: machine-global id (0..4095 for a full machine).
        block_id: the 4x4x4 block hosting this chip.
        host_id: machine-global CPU host id (4 chips per host).
        coords: chip coordinates *within its block* (0..3 each).
    """

    chip_id: int
    block_id: int
    host_id: int
    coords: tuple[int, int, int]

    @property
    def tensorcores(self) -> int:
        """TensorCores on the die."""
        return TENSORCORES_PER_CHIP

    @property
    def sparsecores(self) -> int:
        """SparseCores on the die."""
        return SPARSECORES_PER_CHIP

    @property
    def ici_links(self) -> int:
        """ICI ports (x+, x-, y+, y-, z+, z-)."""
        return ICI_LINKS_PER_CHIP

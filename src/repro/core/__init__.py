"""The TPU v4 machine: chips, trays, blocks, the supercomputer, slices,
scheduling, and availability analysis (paper Section 2).
"""

from repro.core.chip import TPUv4Chip, CHIPS_PER_HOST, ICI_LINKS_PER_CHIP
from repro.core.tray import Tray, CHIPS_PER_TRAY, EXTERNAL_LINKS_PER_TRAY
from repro.core.block import Block, CHIPS_PER_BLOCK, HOSTS_PER_BLOCK
from repro.core.machine import TPUv4Supercomputer, MACHINE_BLOCKS
from repro.core.slice_ import Slice
from repro.core.slicing import (SliceShape, blocks_needed, canonical_shape,
                                classify_slice, legal_block_shapes,
                                parse_shape, slice_label)
from repro.core.scheduler import (PlacementPolicy, ScheduleOutcome,
                                  SliceScheduler)
from repro.core.availability import (GoodputResult, analytic_ocs_goodput,
                                     simulate_goodput)
from repro.core.deployment import (incremental_deployment,
                                   monolithic_deployment,
                                   sample_delivery_days)
from repro.core.jobsim import (JobRequest, sample_jobs, scheduling_benefit,
                               simulate_job_stream)
from repro.core.checkpoint import (CheckpointParams, expected_overhead,
                                   goodput_fraction, optimal_interval,
                                   policy_report, simulate_run,
                                   sweep_intervals)
from repro.core.security import (IsolationReport, airgap_audit,
                                 reachable_blocks, verify_isolated)

__all__ = [
    "CheckpointParams", "optimal_interval", "expected_overhead",
    "goodput_fraction", "sweep_intervals", "simulate_run", "policy_report",
    "IsolationReport", "airgap_audit", "reachable_blocks",
    "verify_isolated",
    "TPUv4Chip", "CHIPS_PER_HOST", "ICI_LINKS_PER_CHIP",
    "Tray", "CHIPS_PER_TRAY", "EXTERNAL_LINKS_PER_TRAY",
    "Block", "CHIPS_PER_BLOCK", "HOSTS_PER_BLOCK",
    "TPUv4Supercomputer", "MACHINE_BLOCKS",
    "Slice",
    "SliceShape", "blocks_needed", "canonical_shape", "classify_slice",
    "legal_block_shapes", "parse_shape", "slice_label",
    "PlacementPolicy", "ScheduleOutcome", "SliceScheduler",
    "GoodputResult", "analytic_ocs_goodput", "simulate_goodput",
    "incremental_deployment", "monolithic_deployment",
    "sample_delivery_days",
    "JobRequest", "sample_jobs", "scheduling_benefit",
    "simulate_job_stream",
]

"""Job-stream scheduling simulation (the Section 2.5 utilization benefit).

A stream of slice requests (sized per the Table 2 popularity mix) arrives
over time; jobs hold their blocks for a service time, then leave.  The
OCS machine places any-N blocks; the static machine needs contiguous
cuboids and fragments.  The gap in accepted work is the scheduling
benefit of reconfigurability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.scheduler import PlacementPolicy, SliceScheduler
from repro.core.slicing import SliceShape, blocks_needed, parse_shape
from repro.errors import SchedulingError
from repro.models.workload import TABLE2_SLICES
from repro.sim.events import Simulator
from repro.sim.rng import make_rng


@dataclass(frozen=True)
class JobRequest:
    """One slice request."""

    job_id: int
    shape: SliceShape
    arrival: float
    duration: float

    @property
    def blocks(self) -> int:
        """Blocks the job needs."""
        return blocks_needed(self.shape)


@dataclass
class JobStreamOutcome:
    """Aggregate results of one simulated job stream."""

    policy: PlacementPolicy
    accepted: int = 0
    rejected: int = 0
    block_time_used: float = 0.0
    horizon: float = 0.0
    num_blocks: int = 64

    @property
    def acceptance_rate(self) -> float:
        """Jobs placed / jobs offered."""
        total = self.accepted + self.rejected
        return self.accepted / total if total else 0.0

    @property
    def utilization(self) -> float:
        """Block-time used / block-time available."""
        capacity = self.horizon * self.num_blocks
        return self.block_time_used / capacity if capacity else 0.0


def sample_jobs(num_jobs: int, *, mean_interarrival: float = 0.5,
                mean_duration: float = 8.0, seed: int = 0) -> list[JobRequest]:
    """Draw jobs with Table 2 shape popularity and exponential timing."""
    if num_jobs < 1:
        raise SchedulingError("need at least one job")
    rng = make_rng(seed)
    shapes = []
    weights = []
    for usage in TABLE2_SLICES:
        shape, _ = parse_shape(usage.label)
        shapes.append(shape)
        weights.append(usage.share)
    probabilities = np.array(weights) / sum(weights)
    arrivals = np.cumsum(rng.exponential(mean_interarrival, size=num_jobs))
    durations = rng.exponential(mean_duration, size=num_jobs)
    picks = rng.choice(len(shapes), size=num_jobs, p=probabilities)
    return [JobRequest(job_id=i, shape=shapes[picks[i]],
                       arrival=float(arrivals[i]),
                       duration=float(durations[i]))
            for i in range(num_jobs)]


def simulate_job_stream(jobs: list[JobRequest],
                        policy: PlacementPolicy, *,
                        num_blocks: int = 64) -> JobStreamOutcome:
    """Run the stream through an event-driven occupancy simulation.

    Jobs that cannot be placed at arrival are rejected (lost), the
    conservative discipline that makes fragmentation visible.
    """
    free = [True] * num_blocks
    outcome = JobStreamOutcome(policy=policy, num_blocks=num_blocks)
    sim = Simulator()

    def try_place(job: JobRequest) -> None:
        scheduler = SliceScheduler(free)
        packed = scheduler.pack(job.shape, policy)
        if not packed.placements:
            outcome.rejected += 1
            return
        placement = packed.placements[0]
        for block in placement:
            free[block] = False
        outcome.accepted += 1
        outcome.block_time_used += len(placement) * job.duration

        def release() -> None:
            for block in placement:
                free[block] = True

        sim.schedule_at(job.arrival + job.duration, release)

    for job in jobs:
        sim.schedule_at(job.arrival, lambda j=job: try_place(j))
    sim.run()
    outcome.horizon = max((j.arrival + j.duration for j in jobs),
                          default=0.0)
    return outcome


def scheduling_benefit(num_jobs: int = 400, seed: int = 0) -> dict[str, float]:
    """OCS-vs-static acceptance and utilization on one job stream."""
    jobs = sample_jobs(num_jobs, seed=seed)
    ocs = simulate_job_stream(jobs, PlacementPolicy.OCS)
    static = simulate_job_stream(jobs, PlacementPolicy.STATIC)
    return {
        "ocs_acceptance": ocs.acceptance_rate,
        "static_acceptance": static.acceptance_rate,
        "ocs_utilization": ocs.utilization,
        "static_utilization": static.utilization,
    }

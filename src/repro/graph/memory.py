"""Per-chip HBM residency of a partitioned program (Section 7.10).

"TPU v4 has less HBM capacity than A100; could that limit LLM
performance?  Our autoML LLM configuration search (Section 4) considers
HBM capacity ... The HBM capacity could be a limiting factor in some
cases, but typically TPU v4 enables larger models to be partitioned
across more chips."

This module is that feasibility check: given a :class:`ShardedGraph`,
it accounts the per-chip bytes of

* parameters (sharded as GSPMD placed them),
* gradients and optimizer state (Adam: two moments per weight, the
  paper's cost model uses 10 bytes/parameter-state in total),
* saved forward activations (everything the backward pass re-reads),

and answers whether the configuration fits the chip's 32 GiB (Table 4)
— the constraint the Table 3 search and the pipeline schedules
(1F1B's residency cap) exist to satisfy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.graph.ops import (CollectiveOp, ElementwiseOp, FusionOp, InputOp,
                             MatMulOp, Op, ParameterOp)
from repro.graph.spmd import ShardedGraph
from repro.graph.tensor import local_shape
from repro.units import GIB

# Table 4: 32 GiB HBM2 per TPU v4 chip.
TPUV4_HBM_CAPACITY = 32 * GIB


@dataclass(frozen=True)
class MemoryEstimate:
    """Per-chip HBM residency breakdown, in bytes.

    Attributes:
        parameter_bytes: sharded weights.
        gradient_bytes: one gradient per weight (same dtype).
        optimizer_bytes: Adam moments in fp32 (8 bytes per weight).
        activation_bytes: forward activations saved for backward.
    """

    parameter_bytes: float
    gradient_bytes: float
    optimizer_bytes: float
    activation_bytes: float

    @property
    def total_bytes(self) -> float:
        """Everything resident at the backward-pass peak."""
        return (self.parameter_bytes + self.gradient_bytes
                + self.optimizer_bytes + self.activation_bytes)

    def fits(self, capacity: float = TPUV4_HBM_CAPACITY, *,
             headroom: float = 0.9) -> bool:
        """True when the program fits `headroom` of the HBM."""
        if capacity <= 0 or not 0 < headroom <= 1:
            raise ConfigurationError("capacity and headroom must be > 0")
        return self.total_bytes <= capacity * headroom

    def utilization(self, capacity: float = TPUV4_HBM_CAPACITY) -> float:
        """Fraction of HBM the program occupies."""
        return self.total_bytes / capacity

    def summary(self) -> str:
        """One-line breakdown in GiB."""
        return (f"params {self.parameter_bytes / GIB:.2f} + "
                f"grads {self.gradient_bytes / GIB:.2f} + "
                f"opt {self.optimizer_bytes / GIB:.2f} + "
                f"acts {self.activation_bytes / GIB:.2f} = "
                f"{self.total_bytes / GIB:.2f} GiB")


def _local_bytes(sharded: ShardedGraph, op: Op) -> float:
    shape = local_shape(op.output, sharded.shardings[op.name],
                        sharded.mesh.axis_sizes)
    return math.prod(shape) * op.output.dtype_bytes


def _is_saved_activation(sharded: ShardedGraph, op: Op) -> bool:
    """Forward tensors the backward pass re-reads stay resident.

    Heuristic matching the builders: an op output is a saved activation
    when some *later* consumer is a matmul or elementwise (the backward
    ops re-reading it through a transpose also count, because the
    transpose is a zero-copy fusion).
    """
    if isinstance(op, (ParameterOp, CollectiveOp)):
        return False
    if isinstance(op, (InputOp, MatMulOp, ElementwiseOp, FusionOp)):
        return bool(sharded.graph.consumers(op.name))
    return bool(sharded.graph.consumers(op.name))


def estimate_memory(sharded: ShardedGraph, *,
                    optimizer_bytes_per_param: float = 8.0,
                    activation_liveness: float = 0.5
                    ) -> MemoryEstimate:
    """Account the per-chip HBM residency of a partitioned program.

    Args:
        sharded: the partitioned program.
        optimizer_bytes_per_param: fp32 Adam moments = 8; SGD = 0.
        activation_liveness: fraction of forward activation bytes alive
            at the backward peak.  1.0 is the no-rematerialization worst
            case; production compilers recompute cheap ops, and 0.5 is a
            reasonable default (the paper's cost model folds this into
            its "activation memory factor").

    Returns:
        The per-chip :class:`MemoryEstimate`.
    """
    if not 0 <= activation_liveness <= 1:
        raise ConfigurationError("liveness must be in [0, 1]")
    if optimizer_bytes_per_param < 0:
        raise ConfigurationError("optimizer bytes must be >= 0")
    params = 0.0
    param_elements = 0.0
    activations = 0.0
    for op in sharded.graph.ops():
        if isinstance(op, ParameterOp):
            local = _local_bytes(sharded, op)
            params += local
            param_elements += local / op.output.dtype_bytes
        elif isinstance(op, FusionOp):
            continue  # zero-copy views
        elif _is_saved_activation(sharded, op):
            activations += _local_bytes(sharded, op)
    return MemoryEstimate(
        parameter_bytes=params,
        gradient_bytes=params,
        optimizer_bytes=param_elements * optimizer_bytes_per_param,
        activation_bytes=activations * activation_liveness)


def max_global_batch(sharded_builder, mesh, *, candidates: list[int],
                     capacity: float = TPUV4_HBM_CAPACITY) -> int | None:
    """Largest candidate batch whose program still fits HBM.

    Args:
        sharded_builder: callable batch -> (graph, annotations).
        mesh: the device mesh to partition over.
        candidates: ascending batch sizes to try.
        capacity: per-chip HBM bytes.

    Returns:
        The largest fitting batch, or None if even the smallest spills.
    """
    from repro.graph.spmd import partition
    best: int | None = None
    for batch in candidates:
        graph, annotations = sharded_builder(batch)
        estimate = estimate_memory(partition(graph, mesh, annotations))
        if estimate.fits(capacity):
            best = batch
        else:
            break
    return best

"""Graph-op-level simulation: IR, GSPMD partitioning, event-driven execution.

The reproduction of the paper's own evaluation vehicle — "an internal
event-driven simulator that operates at the TensorFlow graph operation
level" (Section 7.3) — plus the GSPMD sharding machinery (Xu et al.
[63]) behind Table 3's 1D/2D partitioning options and the
communication/computation overlap transform (Wang et al. [59]) behind
Section 7.10's scaling claim.

Typical use::

    from repro.graph import (DeviceMesh, MeshAxis, partition, simulate,
                             transformer_step_graph)

    mesh = DeviceMesh((8, 8, 8), [MeshAxis("data", 8, (0,)),
                                  MeshAxis("model1", 64, (1, 2))])
    graph, annotations = transformer_step_graph(LLM_CONFIG, global_batch=512)
    program = partition(graph, mesh, annotations)
    trace = simulate(program)
    print(trace.summary())
"""

from repro.graph.builders import (DLRMGraphConfig, TransformerShardingPlan,
                                  dlrm_step_graph, mlp_step_graph,
                                  transformer_step_graph)
from repro.graph.graph import ComputationGraph
from repro.graph.mesh import DeviceMesh, MeshAxis, mesh_from_partition_spec
from repro.graph.ops import (AllGatherOp, AllReduceOp, AllToAllOp,
                             CollectiveOp, ElementwiseOp, EmbeddingLookupOp,
                             FusionOp, InputOp, MatMulOp, Op, ParameterOp,
                             PermuteOp, ReduceScatterOp)
from repro.graph.overlap import (decompose_all, decompose_pair,
                                 overlap_speedup, overlappable_pairs)
from repro.graph.pipeline import (PipelineConfig, PipelineOutcome,
                                  PipelineSchedule,
                                  analytic_bubble_fraction,
                                  microbatch_sweep, simulate_pipeline)
from repro.graph.memory import (MemoryEstimate, TPUV4_HBM_CAPACITY,
                                estimate_memory, max_global_batch)
from repro.graph.schedule import (ChipTimingModel, GraphScheduler,
                                  TPUV3_TIMING, TPUV4_TIMING, simulate)
from repro.graph.spmd import ShardedGraph, partition
from repro.graph.tensor import (ShardingSpec, TensorSpec, local_shape,
                                replicated)
from repro.graph.trace import ExecutionTrace, OpRecord

__all__ = [
    "ComputationGraph", "Op", "InputOp", "ParameterOp", "MatMulOp",
    "ElementwiseOp", "EmbeddingLookupOp", "FusionOp", "CollectiveOp",
    "AllReduceOp", "AllGatherOp", "ReduceScatterOp", "AllToAllOp",
    "PermuteOp",
    "TensorSpec", "ShardingSpec", "replicated", "local_shape",
    "DeviceMesh", "MeshAxis", "mesh_from_partition_spec",
    "partition", "ShardedGraph",
    "ChipTimingModel", "TPUV4_TIMING", "TPUV3_TIMING", "GraphScheduler",
    "simulate",
    "ExecutionTrace", "OpRecord",
    "decompose_pair", "decompose_all", "overlappable_pairs",
    "overlap_speedup",
    "PipelineConfig", "PipelineOutcome", "PipelineSchedule",
    "analytic_bubble_fraction", "microbatch_sweep", "simulate_pipeline",
    "MemoryEstimate", "TPUV4_HBM_CAPACITY", "estimate_memory",
    "max_global_batch",
    "transformer_step_graph", "dlrm_step_graph", "mlp_step_graph",
    "TransformerShardingPlan", "DLRMGraphConfig",
]

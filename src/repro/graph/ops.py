"""Operation IR for the graph-level simulator.

Ops are the vocabulary of the paper's own evaluation tool ("an internal
event-driven simulator that operates at the TensorFlow graph operation
level", Section 7.3): dense matmuls for the TensorCore, elementwise
vector work for the VPU, embedding lookups for the SparseCore, and the
collectives the GSPMD partitioner inserts.  Every op knows its global
FLOPs and memory traffic; the SPMD pass scales those to per-chip
quantities, and the scheduler turns them into time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.errors import ConfigurationError
from repro.graph.tensor import TensorSpec


@dataclass(frozen=True)
class Op:
    """One graph node: named, with named inputs and one output tensor.

    Attributes:
        name: unique node id within the graph.
        inputs: names of producer nodes, in positional order.
        output: logical (global) output tensor (a scalar by default so
            subclasses can declare defaulted fields; real ops always
            pass one).
    """

    name: str
    inputs: tuple[str, ...] = ()
    output: TensorSpec = TensorSpec(())
    kind: ClassVar[str] = "op"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("op name must be non-empty")

    def flops(self) -> float:
        """Global floating-point work of the op."""
        return 0.0

    def bytes_accessed(self) -> float:
        """Global memory traffic: output written (inputs priced by graph)."""
        return float(self.output.num_bytes)

    @property
    def is_collective(self) -> bool:
        """True for communication ops (priced by the network, not compute)."""
        return isinstance(self, CollectiveOp)


@dataclass(frozen=True)
class InputOp(Op):
    """A per-step input (activations, labels, feature ids)."""

    kind: ClassVar[str] = "input"


@dataclass(frozen=True)
class ParameterOp(Op):
    """A trainable weight tensor."""

    kind: ClassVar[str] = "parameter"


@dataclass(frozen=True)
class MatMulOp(Op):
    """Dense matmul ``[batch, m, k] x [k, n] -> [batch, m, n]``.

    `batch` folds any leading dimensions (including attention heads); the
    MXU sees `batch` independent m*k*n contractions.

    `batch_local` marks activation-by-activation contractions whose
    operands are sharded identically along folded batch dimensions
    (attention scores and context): the contraction stays inside each
    shard, so the partitioner scales FLOPs by the shard fraction and
    inserts no collectives.
    """

    m: int = 1
    k: int = 1
    n: int = 1
    batch: int = 1
    batch_local: bool = False
    kind: ClassVar[str] = "matmul"

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.inputs) != 2:
            raise ConfigurationError(
                f"matmul {self.name!r} needs exactly 2 inputs")
        for extent in (self.m, self.k, self.n, self.batch):
            if extent < 1:
                raise ConfigurationError(
                    f"matmul {self.name!r} extents must be >= 1")

    def flops(self) -> float:
        """2*m*k*n multiply-accumulates per batch element."""
        return 2.0 * self.batch * self.m * self.k * self.n


@dataclass(frozen=True)
class ElementwiseOp(Op):
    """VPU work: activation functions, norms, residuals, softmax pieces."""

    flops_per_element: float = 1.0
    kind: ClassVar[str] = "elementwise"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.flops_per_element < 0:
            raise ConfigurationError(
                f"elementwise {self.name!r} flops_per_element must be >= 0")

    def flops(self) -> float:
        """flops_per_element over the output extent."""
        return self.flops_per_element * self.output.num_elements

    def bytes_accessed(self) -> float:
        """Elementwise ops are memory bound: read inputs + write output.

        Inputs are assumed output-sized (true for the norms/activations
        we emit); refinements can subclass.
        """
        reads = len(self.inputs) * self.output.num_bytes
        return float(reads + self.output.num_bytes)


@dataclass(frozen=True)
class EmbeddingLookupOp(Op):
    """SparseCore gather: `lookups` rows of width `width` from a table.

    Inputs are (table, ids).  Combining multivalent lookups is a sum,
    counted at one FLOP per gathered element.
    """

    vocab: int = 1
    width: int = 1
    lookups: int = 1
    kind: ClassVar[str] = "embedding_lookup"

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.inputs) != 2:
            raise ConfigurationError(
                f"embedding lookup {self.name!r} needs (table, ids) inputs")
        for extent in (self.vocab, self.width, self.lookups):
            if extent < 1:
                raise ConfigurationError(
                    f"embedding lookup {self.name!r} extents must be >= 1")

    def flops(self) -> float:
        """One add per gathered element (multivalent combining)."""
        return float(self.lookups * self.width)

    def bytes_accessed(self) -> float:
        """Gathered rows + written output; the table itself stays in HBM."""
        gathered = self.lookups * self.width * self.output.dtype_bytes
        return float(gathered + self.output.num_bytes)


@dataclass(frozen=True)
class CollectiveOp(Op):
    """Base for communication ops, priced per mesh axis.

    Attributes:
        mesh_axis: the parallelism axis the collective spans.
        comm_bytes: bytes each chip contributes (the alpha-beta models'
            `num_bytes` argument).
    """

    mesh_axis: str = ""
    comm_bytes: float = 0.0
    kind: ClassVar[str] = "collective"
    collective_kind: ClassVar[str] = "none"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.mesh_axis:
            raise ConfigurationError(
                f"collective {self.name!r} needs a mesh axis")
        if self.comm_bytes < 0:
            raise ConfigurationError(
                f"collective {self.name!r} comm_bytes must be >= 0")

    def bytes_accessed(self) -> float:
        """Collectives move bytes over ICI, not through HBM (DMA engines)."""
        return 0.0


@dataclass(frozen=True)
class AllReduceOp(CollectiveOp):
    """Sum partial results over a mesh axis."""

    kind: ClassVar[str] = "all_reduce"
    collective_kind: ClassVar[str] = "all_reduce"


@dataclass(frozen=True)
class ReduceScatterOp(CollectiveOp):
    """Sum + shard over a mesh axis (scatter along `scatter_dim`)."""

    scatter_dim: int = 0
    kind: ClassVar[str] = "reduce_scatter"
    collective_kind: ClassVar[str] = "reduce_scatter"


@dataclass(frozen=True)
class AllGatherOp(CollectiveOp):
    """Unshard one dimension over a mesh axis (gather along `gather_dim`)."""

    gather_dim: int = 0
    kind: ClassVar[str] = "all_gather"
    collective_kind: ClassVar[str] = "all_gather"


@dataclass(frozen=True)
class AllToAllOp(CollectiveOp):
    """Variable-length all-to-all exchange (embedding vectors, resharding)."""

    kind: ClassVar[str] = "all_to_all"
    collective_kind: ClassVar[str] = "all_to_all"


@dataclass(frozen=True)
class PermuteOp(CollectiveOp):
    """Neighbor send/recv along an axis (pipeline-stage boundary)."""

    kind: ClassVar[str] = "permute"
    collective_kind: ClassVar[str] = "permute"


@dataclass(frozen=True)
class FusionOp(Op):
    """Zero-cost glue: concatenates/renames chunk results after a
    decomposition transform so downstream consumers keep one producer."""

    kind: ClassVar[str] = "fusion"

    def bytes_accessed(self) -> float:
        """Pure renaming — the compiler elides it."""
        return 0.0

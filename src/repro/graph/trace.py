"""Execution traces produced by the graph scheduler.

A trace is the list of (op, engine, start, end) intervals one
representative chip executed — SPMD programs run the same schedule on
every chip, so one chip's timeline *is* the step time.  The trace knows
how to validate itself (engine exclusivity, dependency ordering),
summarise utilization, compute model-FLOPs utilization (the metric
behind the abstract's "~60% of peak FLOPS/second"), and render an ASCII
timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(frozen=True)
class OpRecord:
    """One executed op interval."""

    name: str
    kind: str
    engine: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Seconds the op occupied its engine."""
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """The timeline of one simulated training step."""

    records: list[OpRecord] = field(default_factory=list)
    dependencies: dict[str, tuple[str, ...]] = field(default_factory=dict)

    # -- aggregates ---------------------------------------------------------------

    @property
    def makespan(self) -> float:
        """End-to-end step time."""
        return max((r.end for r in self.records), default=0.0)

    @property
    def engines(self) -> list[str]:
        """Engines that executed at least one op, sorted."""
        return sorted({r.engine for r in self.records})

    def busy_seconds(self, engine: str) -> float:
        """Total occupied time of one engine."""
        return sum(r.duration for r in self.records if r.engine == engine)

    def utilization(self, engine: str) -> float:
        """Busy fraction of one engine over the makespan."""
        span = self.makespan
        return self.busy_seconds(engine) / span if span > 0 else 0.0

    def seconds_by_kind(self) -> dict[str, float]:
        """Occupied seconds per op kind."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0.0) + r.duration
        return out

    def exposed_comm_seconds(self) -> float:
        """Communication time not hidden under compute.

        Wall-clock during which some ICI channel is busy and no compute
        engine is — the time overlap (Wang et al. [59]) exists to remove.
        """
        comm = self._union(is_comm=True)
        compute = self._union(is_comm=False)
        exposed = 0.0
        for start, end in comm:
            exposed += end - start - _overlap_with(start, end, compute)
        return exposed

    def mfu(self, model_flops: float, peak_flops: float) -> float:
        """Model FLOPs utilization: useful FLOPs / (peak * step time)."""
        span = self.makespan
        if span <= 0 or peak_flops <= 0:
            return 0.0
        return model_flops / (peak_flops * span)

    # -- validation -----------------------------------------------------------------

    def validate(self) -> None:
        """Check engine exclusivity and dependency ordering."""
        by_engine: dict[str, list[OpRecord]] = {}
        ends: dict[str, float] = {}
        for r in self.records:
            if r.end < r.start:
                raise SimulationError(f"op {r.name!r} ends before it starts")
            by_engine.setdefault(r.engine, []).append(r)
            ends[r.name] = r.end
        for engine, records in by_engine.items():
            records = sorted(records, key=lambda r: (r.start, r.end))
            for prev, cur in zip(records, records[1:]):
                if cur.start < prev.end - 1e-12:
                    raise SimulationError(
                        f"engine {engine!r}: {cur.name!r} starts at "
                        f"{cur.start} before {prev.name!r} ends at {prev.end}")
        starts = {r.name: r.start for r in self.records}
        for name, deps in self.dependencies.items():
            for dep in deps:
                if dep in ends and name in starts \
                        and starts[name] < ends[dep] - 1e-12:
                    raise SimulationError(
                        f"op {name!r} starts before its input {dep!r} ends")

    # -- rendering ---------------------------------------------------------------------

    def timeline(self, width: int = 72) -> str:
        """ASCII gantt chart, one row per engine."""
        span = self.makespan
        if span <= 0:
            return "(empty trace)"
        lines = []
        for engine in self.engines:
            cells = [" "] * width
            for r in self.records:
                if r.engine != engine:
                    continue
                lo = int(r.start / span * (width - 1))
                hi = max(lo, int(r.end / span * (width - 1)))
                for i in range(lo, hi + 1):
                    cells[i] = "#" if not r.kind.startswith("all") else "="
            lines.append(f"{engine:>14} |{''.join(cells)}|")
        lines.append(f"{'':>14} 0{' ' * (width - 10)}{span * 1e3:8.3f} ms")
        return "\n".join(lines)

    def summary(self) -> str:
        """Multi-line utilization report."""
        lines = [f"makespan: {self.makespan * 1e3:.3f} ms"]
        for engine in self.engines:
            lines.append(f"  {engine}: busy {self.busy_seconds(engine) * 1e3:.3f} ms "
                         f"({self.utilization(engine):.1%})")
        lines.append(f"  exposed comm: "
                     f"{self.exposed_comm_seconds() * 1e3:.3f} ms")
        return "\n".join(lines)

    # -- helpers -----------------------------------------------------------------------

    def _union(self, *, is_comm: bool) -> list[tuple[float, float]]:
        """Merged busy intervals of comm (or compute) engines."""
        intervals = sorted(
            (r.start, r.end) for r in self.records
            if r.engine.startswith("ici") == is_comm and r.duration > 0)
        merged: list[tuple[float, float]] = []
        for start, end in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged


def _overlap_with(start: float, end: float,
                  intervals: list[tuple[float, float]]) -> float:
    """Length of [start, end] covered by a merged interval list."""
    covered = 0.0
    for lo, hi in intervals:
        covered += max(0.0, min(end, hi) - max(start, lo))
    return covered

"""Pipeline-parallel schedules: the third parallelism type (Section 2.7).

"Pipeline Parallelism: for a DNN with many layers, each chip computes a
subset of layers, and communicates the layer results to chips holding
the adjacent layers."  Table 3's GPT-3 case runs pipeline depth 16.

Two classic synchronous schedules over one training step:

* **GPipe** — all microbatch forwards, then all backwards.  Simple,
  but every in-flight microbatch's activations stay resident, so peak
  memory grows with the microbatch count.
* **1F1B** — after a warm-up of (stages - position) forwards, each
  stage alternates one backward with one forward.  Same bubble for
  uniform stage times, but peak residency is capped by the stage count
  — the reason deep pipelines fit in 32 GiB of HBM (Section 7.10).

Both run on the discrete-event kernel with explicit dependencies, so
the pipeline bubble *emerges* from the schedule rather than being a
pasted-in formula; the closed form (stages-1)/(microbatches+stages-1)
is exposed separately for validation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.sim.events import Simulator


class PipelineSchedule(enum.Enum):
    """Which synchronous schedule orders the microbatch work."""

    GPIPE = "gpipe"
    ONE_F_ONE_B = "1f1b"


@dataclass(frozen=True)
class PipelineConfig:
    """One pipelined training step.

    Attributes:
        num_stages: pipeline depth (chips groups along the pipeline axis).
        num_microbatches: microbatches per global batch.
        forward_seconds: per-stage forward time of one microbatch.
        backward_seconds: per-stage backward time (typically ~2x forward).
        permute_seconds: stage-boundary activation transfer time (the
            PermuteOp cost on the pipeline mesh axis).
        schedule: GPipe or 1F1B.
    """

    num_stages: int
    num_microbatches: int
    forward_seconds: float
    backward_seconds: float
    permute_seconds: float = 0.0
    schedule: PipelineSchedule = PipelineSchedule.ONE_F_ONE_B

    def __post_init__(self) -> None:
        if self.num_stages < 1 or self.num_microbatches < 1:
            raise ConfigurationError(
                "stages and microbatches must be >= 1")
        if min(self.forward_seconds, self.backward_seconds) <= 0:
            raise ConfigurationError("stage times must be > 0")
        if self.permute_seconds < 0:
            raise ConfigurationError("permute time must be >= 0")


@dataclass
class PipelineOutcome:
    """Measured behaviour of one simulated step."""

    config: PipelineConfig
    step_seconds: float
    ideal_seconds: float
    peak_activations: int
    stage_busy_seconds: list[float] = field(default_factory=list)

    @property
    def bubble_fraction(self) -> float:
        """Fraction of the step the pipeline sits idle."""
        return 1.0 - self.ideal_seconds / self.step_seconds

    @property
    def efficiency(self) -> float:
        """Useful fraction (1 - bubble)."""
        return self.ideal_seconds / self.step_seconds


def analytic_bubble_fraction(num_stages: int,
                             num_microbatches: int) -> float:
    """The textbook bubble: (s - 1) / (m + s - 1), uniform stages."""
    if num_stages < 1 or num_microbatches < 1:
        raise ConfigurationError("stages and microbatches must be >= 1")
    return (num_stages - 1) / (num_microbatches + num_stages - 1)


class _StageState:
    """Work queue and occupancy of one pipeline stage."""

    def __init__(self, index: int, config: PipelineConfig) -> None:
        self.index = index
        self.config = config
        self.busy = False
        self.busy_seconds = 0.0
        self.fwd_ready: list[int] = []   # microbatches with inputs present
        self.bwd_ready: list[int] = []
        self.fwd_done = 0
        self.bwd_done = 0
        self.resident = 0                # activations held
        self.peak_resident = 0

    def next_work(self) -> tuple[str, int] | None:
        """Pick the next (kind, microbatch) under the schedule policy."""
        gpipe = self.config.schedule is PipelineSchedule.GPIPE
        if gpipe:
            if self.fwd_ready:
                return "fwd", self.fwd_ready.pop(0)
            if self.fwd_done == self.config.num_microbatches \
                    and self.bwd_ready:
                return "bwd", self.bwd_ready.pop(0)
            return None
        # 1F1B: at most (stages - index) microbatches in flight per
        # stage; at the cap only a backward (which retires one) may
        # run.  This is what caps residency at the pipeline depth.
        in_flight_cap = self.config.num_stages - self.index
        if self.fwd_ready and (self.fwd_done - self.bwd_done) < in_flight_cap:
            return "fwd", self.fwd_ready.pop(0)
        if self.bwd_ready:
            return "bwd", self.bwd_ready.pop(0)
        return None


def simulate_pipeline(config: PipelineConfig) -> PipelineOutcome:
    """Run one step of the schedule on the event kernel."""
    sim = Simulator()
    stages = [_StageState(i, config) for i in range(config.num_stages)]
    last = config.num_stages - 1

    def dispatch(stage: _StageState) -> None:
        if stage.busy:
            return
        work = stage.next_work()
        if work is None:
            return
        kind, microbatch = work
        stage.busy = True
        duration = (config.forward_seconds if kind == "fwd"
                    else config.backward_seconds)
        stage.busy_seconds += duration

        def finish() -> None:
            stage.busy = False
            if kind == "fwd":
                stage.fwd_done += 1
                stage.resident += 1
                stage.peak_resident = max(stage.peak_resident,
                                          stage.resident)
                if stage.index < last:
                    sim.schedule(config.permute_seconds,
                                 lambda: _arrive_fwd(stage.index + 1,
                                                     microbatch))
                else:
                    stage.bwd_ready.append(microbatch)
            else:
                stage.bwd_done += 1
                stage.resident -= 1
                if stage.index > 0:
                    sim.schedule(config.permute_seconds,
                                 lambda: _arrive_bwd(stage.index - 1,
                                                     microbatch))
            dispatch(stage)

        sim.schedule(duration, finish)

    def _arrive_fwd(index: int, microbatch: int) -> None:
        stages[index].fwd_ready.append(microbatch)
        dispatch(stages[index])

    def _arrive_bwd(index: int, microbatch: int) -> None:
        stages[index].bwd_ready.append(microbatch)
        dispatch(stages[index])

    for microbatch in range(config.num_microbatches):
        stages[0].fwd_ready.append(microbatch)
    dispatch(stages[0])
    budget = 8 * config.num_stages * config.num_microbatches + 64
    sim.run(max_events=budget)

    for stage in stages:
        if stage.fwd_done != config.num_microbatches \
                or stage.bwd_done != config.num_microbatches:
            raise SimulationError(
                f"stage {stage.index} finished {stage.fwd_done} fwd / "
                f"{stage.bwd_done} bwd of {config.num_microbatches}")

    per_microbatch = config.forward_seconds + config.backward_seconds
    return PipelineOutcome(
        config=config,
        step_seconds=sim.now,
        ideal_seconds=config.num_microbatches * per_microbatch,
        peak_activations=max(s.peak_resident for s in stages),
        stage_busy_seconds=[s.busy_seconds for s in stages])


def microbatch_sweep(num_stages: int, microbatch_counts: list[int], *,
                     forward_seconds: float = 1.0,
                     backward_seconds: float = 2.0,
                     permute_seconds: float = 0.0,
                     schedule: PipelineSchedule = PipelineSchedule.ONE_F_ONE_B
                     ) -> list[PipelineOutcome]:
    """Bubble fraction vs microbatch count, the standard tuning plot."""
    outcomes = []
    for count in microbatch_counts:
        config = PipelineConfig(
            num_stages=num_stages, num_microbatches=count,
            forward_seconds=forward_seconds,
            backward_seconds=backward_seconds,
            permute_seconds=permute_seconds, schedule=schedule)
        outcomes.append(simulate_pipeline(config))
    return outcomes

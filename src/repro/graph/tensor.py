"""Tensor and sharding specifications for the graph IR.

A :class:`TensorSpec` is a logical (global) tensor shape; a
:class:`ShardingSpec` says, per tensor dimension, which mesh axis the
dimension is split over (GSPMD's dimension-to-axis annotation, Xu et
al. [63] — the paper's reference for the "1D/2D activation/weight
partitioning" options of Table 3).  A tensor may additionally be a
*partial sum* pending an all-reduce over some axes, which is how a
matmul whose contracted dimension was sharded expresses its
not-yet-reduced output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TensorSpec:
    """A logical (unpartitioned) tensor: shape plus element width."""

    shape: tuple[int, ...]
    dtype_bytes: int = 2  # bf16 by default, matching TPU training

    def __post_init__(self) -> None:
        for extent in self.shape:
            if extent < 1:
                raise ConfigurationError(
                    f"tensor extents must be >= 1, got {self.shape}")
        if self.dtype_bytes < 1:
            raise ConfigurationError(
                f"dtype_bytes must be >= 1, got {self.dtype_bytes}")

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        """Product of extents (1 for a scalar)."""
        return math.prod(self.shape)

    @property
    def num_bytes(self) -> int:
        """Global size in bytes."""
        return self.num_elements * self.dtype_bytes

    def with_shape(self, shape: tuple[int, ...]) -> "TensorSpec":
        """Same dtype, different shape."""
        return TensorSpec(shape=shape, dtype_bytes=self.dtype_bytes)


@dataclass(frozen=True)
class ShardingSpec:
    """Dimension-to-mesh-axis sharding of one tensor.

    Attributes:
        axes: one entry per tensor dimension — a mesh axis name the
            dimension is split over, or None for an unsharded dimension.
            An axis name may appear at most once.
        partial: mesh axes over which the tensor holds unreduced partial
            sums (produced by contracting a sharded dimension).
    """

    axes: tuple[str | None, ...]
    partial: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        named = [a for a in self.axes if a is not None]
        if len(named) != len(set(named)):
            raise ConfigurationError(
                f"a mesh axis may shard at most one dimension: {self.axes}")
        overlap = set(named) & set(self.partial)
        if overlap:
            raise ConfigurationError(
                f"axes {sorted(overlap)} cannot be both sharding and partial")
        if len(self.partial) != len(set(self.partial)):
            raise ConfigurationError(
                f"duplicate partial axes: {self.partial}")

    @property
    def rank(self) -> int:
        """Tensor rank the spec applies to."""
        return len(self.axes)

    @property
    def is_replicated(self) -> bool:
        """True when no dimension is sharded and no partial sums remain."""
        return all(a is None for a in self.axes) and not self.partial

    @property
    def sharded_axes(self) -> tuple[str, ...]:
        """Mesh axes that shard some dimension, in dimension order."""
        return tuple(a for a in self.axes if a is not None)

    def axis_of_dim(self, dim: int) -> str | None:
        """Mesh axis sharding tensor dimension `dim` (None if unsharded)."""
        return self.axes[dim]

    def dim_of_axis(self, axis: str) -> int | None:
        """Tensor dimension sharded by `axis` (None if the axis is unused)."""
        for dim, name in enumerate(self.axes):
            if name == axis:
                return dim
        return None

    def drop_partial(self) -> "ShardingSpec":
        """The same layout with partial sums resolved."""
        return ShardingSpec(axes=self.axes)

    def with_dim(self, dim: int, axis: str | None) -> "ShardingSpec":
        """Copy with dimension `dim` resharded onto `axis` (or unsharded)."""
        axes = list(self.axes)
        axes[dim] = axis
        return ShardingSpec(axes=tuple(axes), partial=self.partial)

    def label(self) -> str:
        """Compact display form, e.g. ``[data, -, model1]+partial(model2)``."""
        dims = ", ".join(a if a is not None else "-" for a in self.axes)
        suffix = f"+partial({','.join(self.partial)})" if self.partial else ""
        return f"[{dims}]{suffix}"


def replicated(rank: int) -> ShardingSpec:
    """A fully-replicated sharding for a rank-`rank` tensor."""
    return ShardingSpec(axes=(None,) * rank)


def local_shape(tensor: TensorSpec, sharding: ShardingSpec,
                axis_sizes: dict[str, int]) -> tuple[int, ...]:
    """Per-chip shard shape of `tensor` under `sharding`.

    Every sharded dimension must divide evenly by its axis size — the
    compiler would pad; we require exact divisibility to keep cost
    accounting honest.
    """
    if sharding.rank != tensor.rank:
        raise ConfigurationError(
            f"sharding rank {sharding.rank} != tensor rank {tensor.rank}")
    out = []
    for extent, axis in zip(tensor.shape, sharding.axes):
        if axis is None:
            out.append(extent)
            continue
        if axis not in axis_sizes:
            raise ConfigurationError(f"unknown mesh axis {axis!r}")
        size = axis_sizes[axis]
        if extent % size:
            raise ConfigurationError(
                f"dimension of extent {extent} does not divide by "
                f"axis {axis!r} of size {size}")
        out.append(extent // size)
    return tuple(out)

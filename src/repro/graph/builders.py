"""Builders for the training-step graphs the paper's workloads run.

Each builder returns ``(graph, annotations)``: the logical op graph of
one training step (forward, backward, optimizer update) plus the
GSPMD sharding annotations for its parameters and inputs.  Passing the
pair through :func:`repro.graph.spmd.partition` materialises the
communication the parallelism strategy implies:

* :func:`transformer_step_graph` — a decoder block stack with
  Megatron-style tensor parallelism over ``model1`` and data
  parallelism over ``data``; propagation inserts the two forward
  all-reduces per layer, the backward ones, and the data-parallel
  gradient all-reduce in front of every optimizer update.
* :func:`dlrm_step_graph` — dense towers data-parallel, embedding
  tables row-sharded across the slice; propagation inserts the
  all-to-all vector exchanges of Section 3.4.
* :func:`mlp_step_graph` — a minimal dense chain for tests and the
  quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.graph.graph import ComputationGraph
from repro.graph.mesh import DeviceMesh
from repro.graph.ops import (AllToAllOp, ElementwiseOp, EmbeddingLookupOp,
                             FusionOp, InputOp, MatMulOp, ParameterOp)
from repro.graph.tensor import ShardingSpec, TensorSpec
from repro.models.transformer import TransformerConfig

Annotations = dict[str, ShardingSpec]


def _spec(*axes: str | None) -> ShardingSpec:
    return ShardingSpec(axes=tuple(axes))


# ---------------------------------------------------------------------------
# Transformer
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TransformerShardingPlan:
    """Axis names the transformer builder shards over.

    `data` shards the token/batch dimension; `model` column/row-shards
    the weights Megatron-style.  Either may be None to disable that
    form of parallelism.
    """

    data: str | None = "data"
    model: str | None = "model1"


def transformer_step_graph(config: TransformerConfig, *, global_batch: int,
                           plan: TransformerShardingPlan | None = None,
                           num_layers: int | None = None,
                           include_head: bool = True
                           ) -> tuple[ComputationGraph, Annotations]:
    """One training step (fwd + bwd + optimizer) of a decoder stack.

    Args:
        config: model shape (layers, d_model, heads, d_ff, seq_len).
        global_batch: sequences per step across the whole slice.
        plan: which mesh axes shard what; defaults to data+model1.
        num_layers: override layer count (smaller graphs for tests).
        include_head: include embedding lookup, vocab projection, loss.

    Returns:
        (graph, annotations) ready for :func:`repro.graph.spmd.partition`.
    """
    plan = plan or TransformerShardingPlan()
    layers = num_layers if num_layers is not None else config.num_layers
    if layers < 1:
        raise ConfigurationError("need at least one transformer layer")
    tokens = global_batch * config.seq_len
    hidden = config.d_model
    ffn = config.d_ff
    heads = config.num_heads
    head_dim = hidden // heads
    seq = config.seq_len

    g = ComputationGraph(name=f"{config.name}-step")
    ann: Annotations = {}
    dp, mp = plan.data, plan.model

    acts = TensorSpec((tokens, hidden))
    scores_spec = TensorSpec((tokens, heads * seq))

    def elementwise(name: str, inputs: tuple[str, ...],
                    spec: TensorSpec, fpe: float) -> str:
        return g.add(ElementwiseOp(name=name, inputs=inputs, output=spec,
                                   flops_per_element=fpe))

    def parameter(name: str, shape: tuple[int, int],
                  sharding: ShardingSpec) -> str:
        g.add(ParameterOp(name=name, output=TensorSpec(shape)))
        ann[name] = sharding
        return name

    def transpose(name: str, src: str, shape: tuple[int, int],
                  sharding: ShardingSpec) -> str:
        g.add(FusionOp(name=name, inputs=(src,), output=TensorSpec(shape)))
        ann[name] = sharding
        return name

    def matmul(name: str, lhs: str, rhs: str, *, m: int, k: int, n: int,
               out: TensorSpec, batch: int = 1,
               batch_local: bool = False) -> str:
        return g.add(MatMulOp(name=name, inputs=(lhs, rhs), output=out,
                              m=m, k=k, n=n, batch=batch,
                              batch_local=batch_local))

    # -- embedding / step input --------------------------------------------------
    if include_head:
        g.add(InputOp(name="ids", output=TensorSpec((tokens,), dtype_bytes=4)))
        ann["ids"] = _spec(dp)
        # Vocab-sharded over the model axis (Megatron): the input lookup
        # pays an all-to-all and the head computes vocab-parallel logits.
        w_emb = parameter("w_emb", (config.vocab_size, hidden),
                          _spec(mp, None))
        x = g.add(EmbeddingLookupOp(
            name="tok_embed", inputs=(w_emb, "ids"), output=acts,
            vocab=config.vocab_size, width=hidden, lookups=tokens))
        ann["tok_embed"] = _spec(dp, None)
    else:
        x = g.add(InputOp(name="x0", output=acts))
        ann["x0"] = _spec(dp, None)

    # -- forward layers ---------------------------------------------------------------
    saved: list[dict[str, str]] = []  # per-layer activations for backward
    for i in range(layers):
        p = f"l{i}"
        w_qkv = parameter(f"{p}.w_qkv", (hidden, 3 * hidden), _spec(None, mp))
        w_out = parameter(f"{p}.w_out", (hidden, hidden), _spec(mp, None))
        w_up = parameter(f"{p}.w_up", (hidden, ffn), _spec(None, mp))
        w_down = parameter(f"{p}.w_down", (ffn, hidden), _spec(mp, None))

        ln1 = elementwise(f"{p}.ln1", (x,), acts, 6.0)
        qkv = matmul(f"{p}.qkv", ln1, w_qkv, m=tokens, k=hidden,
                     n=3 * hidden, out=TensorSpec((tokens, 3 * hidden)))
        scores = matmul(f"{p}.scores", qkv, qkv, batch=global_batch * heads,
                        m=seq, k=head_dim, n=seq, out=scores_spec,
                        batch_local=True)
        softmax = elementwise(f"{p}.softmax", (scores,), scores_spec, 5.0)
        ctx = matmul(f"{p}.ctx", softmax, qkv, batch=global_batch * heads,
                     m=seq, k=seq, n=head_dim, out=acts, batch_local=True)
        ann[f"{p}.ctx"] = _spec(dp, mp)
        attn_out = matmul(f"{p}.attn_out", ctx, w_out, m=tokens, k=hidden,
                          n=hidden, out=acts)
        resid1 = elementwise(f"{p}.resid1", (attn_out, x), acts, 1.0)

        ln2 = elementwise(f"{p}.ln2", (resid1,), acts, 6.0)
        up = matmul(f"{p}.up", ln2, w_up, m=tokens, k=hidden, n=ffn,
                    out=TensorSpec((tokens, ffn)))
        gelu = elementwise(f"{p}.gelu", (up,), TensorSpec((tokens, ffn)), 8.0)
        down = matmul(f"{p}.down", gelu, w_down, m=tokens, k=ffn, n=hidden,
                      out=acts)
        resid2 = elementwise(f"{p}.resid2", (down, resid1), acts, 1.0)

        saved.append({
            "x": x, "ln1": ln1, "qkv": qkv, "softmax": softmax, "ctx": ctx,
            "ln2": ln2, "gelu": gelu, "w_qkv": w_qkv, "w_out": w_out,
            "w_up": w_up, "w_down": w_down,
        })
        x = resid2

    # -- head + loss --------------------------------------------------------------------
    if include_head:
        w_embT = transpose("w_emb.T", "w_emb",
                           (hidden, config.vocab_size), _spec(None, mp))
        logits_spec = TensorSpec((tokens, config.vocab_size))
        logits = matmul("logits", x, w_embT, m=tokens, k=hidden,
                        n=config.vocab_size, out=logits_spec)
        dlogits = elementwise("dloss", (logits,), logits_spec, 6.0)
        dx = matmul("dlogits.dx", dlogits, "w_emb", m=tokens,
                    k=config.vocab_size, n=hidden, out=acts)
        xT = transpose("head_in.T", x, (hidden, tokens), _spec(None, dp))
        demb = matmul("w_emb.grad", xT, dlogits, m=hidden, k=tokens,
                      n=config.vocab_size,
                      out=TensorSpec((hidden, config.vocab_size)))
        dembT = transpose("w_emb.grad.T", demb,
                          (config.vocab_size, hidden), _spec(mp, None))
        elementwise("w_emb.update", ("w_emb", dembT),
                    TensorSpec((config.vocab_size, hidden)), 4.0)
    else:
        dx = elementwise("dloss", (x,), acts, 2.0)

    # -- backward layers -------------------------------------------------------------------
    for i in reversed(range(layers)):
        p = f"l{i}"
        s = saved[i]
        ffn_spec = TensorSpec((tokens, ffn))

        # FFN backward: down -> gelu -> up.
        w_downT = transpose(f"{p}.w_down.T", s["w_down"], (hidden, ffn),
                            _spec(None, mp))
        dgelu = matmul(f"{p}.dgelu", dx, w_downT, m=tokens, k=hidden, n=ffn,
                       out=ffn_spec)
        geluT = transpose(f"{p}.gelu.T", s["gelu"], (ffn, tokens),
                          _spec(mp, dp))
        dw_down = matmul(f"{p}.w_down.grad", geluT, dx, m=ffn, k=tokens,
                         n=hidden, out=TensorSpec((ffn, hidden)))
        dup = elementwise(f"{p}.dup", (dgelu,), ffn_spec, 8.0)
        w_upT = transpose(f"{p}.w_up.T", s["w_up"], (ffn, hidden),
                          _spec(mp, None))
        dln2 = matmul(f"{p}.dln2", dup, w_upT, m=tokens, k=ffn, n=hidden,
                      out=acts)
        ln2T = transpose(f"{p}.ln2.T", s["ln2"], (hidden, tokens),
                         _spec(None, dp))
        dw_up = matmul(f"{p}.w_up.grad", ln2T, dup, m=hidden, k=tokens,
                       n=ffn, out=TensorSpec((hidden, ffn)))
        dresid1 = elementwise(f"{p}.dresid1", (dln2, dx), acts, 2.0)

        # Attention backward.
        w_outT = transpose(f"{p}.w_out.T", s["w_out"], (hidden, hidden),
                           _spec(None, mp))
        dctx = matmul(f"{p}.dctx", dresid1, w_outT, m=tokens, k=hidden,
                      n=hidden, out=acts)
        ann[f"{p}.dctx"] = _spec(dp, mp)
        ctxT = transpose(f"{p}.ctx.T", s["ctx"], (hidden, tokens),
                         _spec(mp, dp))
        dw_out = matmul(f"{p}.w_out.grad", ctxT, dresid1, m=hidden,
                        k=tokens, n=hidden, out=TensorSpec((hidden, hidden)))
        dsoftmax = matmul(f"{p}.dscores", dctx, s["qkv"],
                          batch=global_batch * heads, m=seq, k=head_dim,
                          n=seq, out=scores_spec, batch_local=True)
        dattn = elementwise(f"{p}.dsoftmax", (dsoftmax,), scores_spec, 5.0)
        dqkv = matmul(f"{p}.dqkv", dattn, s["qkv"],
                      batch=global_batch * heads, m=seq, k=seq, n=head_dim,
                      out=TensorSpec((tokens, 3 * hidden)), batch_local=True)
        ann[f"{p}.dqkv"] = _spec(dp, mp)
        w_qkvT = transpose(f"{p}.w_qkv.T", s["w_qkv"], (3 * hidden, hidden),
                           _spec(mp, None))
        dln1 = matmul(f"{p}.dln1", dqkv, w_qkvT, m=tokens, k=3 * hidden,
                      n=hidden, out=acts)
        ln1T = transpose(f"{p}.ln1.T", s["ln1"], (hidden, tokens),
                         _spec(None, dp))
        dw_qkv = matmul(f"{p}.w_qkv.grad", ln1T, dqkv, m=hidden, k=tokens,
                        n=3 * hidden, out=TensorSpec((hidden, 3 * hidden)))
        dx = elementwise(f"{p}.dx", (dln1, dresid1), acts, 2.0)

        # Optimizer updates (Adam: m, v, and the write).
        for wname, grad in ((s["w_qkv"], dw_qkv), (s["w_out"], dw_out),
                            (s["w_up"], dw_up), (s["w_down"], dw_down)):
            elementwise(f"{wname}.update", (wname, grad),
                        g.op(wname).output, 4.0)

    return g, ann


# ---------------------------------------------------------------------------
# DLRM
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DLRMGraphConfig:
    """Shape of one DLRM training step (Figure 8's model by default)."""

    name: str = "DLRM"
    num_tables: int = 8        # lookup ops emitted (tables, possibly grouped)
    vocab_per_table: int = 4_000_000
    embedding_width: int = 128
    valency: int = 4           # averaged multivalent lookups per feature
    dense_features: int = 512
    bottom_mlp: tuple[int, ...] = (512, 256, 128)
    top_mlp: tuple[int, ...] = (1024, 512, 256, 1)

    def __post_init__(self) -> None:
        if self.num_tables < 1:
            raise ConfigurationError("need at least one embedding table")
        if not self.top_mlp or self.top_mlp[-1] != 1:
            raise ConfigurationError("top MLP must end in a single logit")


def dlrm_step_graph(config: DLRMGraphConfig, mesh: DeviceMesh, *,
                    global_batch: int, data_axis: str = "data",
                    table_axis: str | None = None
                    ) -> tuple[ComputationGraph, Annotations]:
    """One DLRM training step: lookups, dense towers, loss, backward.

    Tables are row-sharded over `table_axis` (default: the data axis,
    i.e. model-parallel across the whole slice, Section 3.3), which
    makes propagation insert the forward all-to-all; the builder emits
    the matching backward gradient all-to-all explicitly.
    """
    table_axis = table_axis or data_axis
    batch = global_batch
    width = config.embedding_width
    g = ComputationGraph(name=f"{config.name}-step")
    ann: Annotations = {}

    def elementwise(name: str, inputs: tuple[str, ...],
                    spec: TensorSpec, fpe: float) -> str:
        return g.add(ElementwiseOp(name=name, inputs=inputs, output=spec,
                                   flops_per_element=fpe))

    # -- embedding forward ------------------------------------------------------
    emb_outputs = []
    for t in range(config.num_tables):
        table = g.add(ParameterOp(
            name=f"table{t}",
            output=TensorSpec((config.vocab_per_table, width))))
        ann[f"table{t}"] = _spec(table_axis, None)
        ids = g.add(InputOp(name=f"ids{t}",
                            output=TensorSpec((batch,), dtype_bytes=4)))
        ann[f"ids{t}"] = _spec(data_axis)
        lookup = g.add(EmbeddingLookupOp(
            name=f"lookup{t}", inputs=(table, ids),
            output=TensorSpec((batch, width)),
            vocab=config.vocab_per_table, width=width,
            lookups=batch * config.valency))
        emb_outputs.append(lookup)

    emb_cat_spec = TensorSpec((batch, config.num_tables * width))
    emb_cat = g.add(FusionOp(name="emb_concat", inputs=tuple(emb_outputs),
                             output=emb_cat_spec))
    ann["emb_concat"] = _spec(data_axis, None)

    # -- dense forward ------------------------------------------------------------
    dense_in = g.add(InputOp(
        name="dense_in", output=TensorSpec((batch, config.dense_features))))
    ann["dense_in"] = _spec(data_axis, None)

    def mlp(prefix: str, x: str, in_dim: int,
            dims: tuple[int, ...]) -> tuple[str, list[tuple[str, str, int, int]]]:
        """Dense tower; returns (output op, [(weight, activation_in, k, n)])."""
        chain = []
        for j, out_dim in enumerate(dims):
            w = g.add(ParameterOp(name=f"{prefix}.w{j}",
                                  output=TensorSpec((in_dim, out_dim))))
            ann[f"{prefix}.w{j}"] = _spec(None, None)
            y = g.add(MatMulOp(name=f"{prefix}.mm{j}", inputs=(x, w),
                               output=TensorSpec((batch, out_dim)),
                               m=batch, k=in_dim, n=out_dim))
            act = elementwise(f"{prefix}.relu{j}", (y,),
                              TensorSpec((batch, out_dim)), 1.0)
            chain.append((w, x, in_dim, out_dim))
            x, in_dim = act, out_dim
        return x, chain

    bottom_out, bottom_chain = mlp("bottom", dense_in,
                                   config.dense_features, config.bottom_mlp)

    # -- feature interaction ---------------------------------------------------------
    cat_dim = config.num_tables * width + config.bottom_mlp[-1]
    interact_in = g.add(FusionOp(name="interact_in",
                                 inputs=(emb_cat, bottom_out),
                                 output=TensorSpec((batch, cat_dim))))
    ann["interact_in"] = _spec(data_axis, None)
    fields = config.num_tables + 1
    interaction = g.add(MatMulOp(
        name="interaction", inputs=(interact_in, interact_in),
        output=TensorSpec((batch, fields * fields)),
        batch=batch, m=fields, k=width, n=fields, batch_local=True))
    ann["interaction"] = _spec(data_axis, None)

    top_in_dim = fields * fields + config.bottom_mlp[-1]
    top_in = g.add(FusionOp(name="top_in", inputs=(interaction, bottom_out),
                            output=TensorSpec((batch, top_in_dim))))
    top_out, top_chain = mlp("top", top_in, top_in_dim, config.top_mlp)
    loss = elementwise("loss", (top_out,), TensorSpec((batch, 1)), 8.0)

    # -- dense backward -----------------------------------------------------------------
    def tower_backward(prefix: str, dx: str,
                       chain: list[tuple[str, str, int, int]]) -> str:
        for j, (w, act_in, in_dim, out_dim) in reversed(
                list(enumerate(chain))):
            dy_spec = TensorSpec((batch, out_dim))
            drelu = elementwise(f"{prefix}.drelu{j}", (dx,), dy_spec, 1.0)
            wT = g.add(FusionOp(name=f"{w}.T", inputs=(w,),
                                output=TensorSpec((out_dim, in_dim))))
            dx = g.add(MatMulOp(name=f"{prefix}.dmm{j}", inputs=(drelu, wT),
                                output=TensorSpec((batch, in_dim)),
                                m=batch, k=out_dim, n=in_dim))
            actT = g.add(FusionOp(name=f"{prefix}.act{j}.T",
                                  inputs=(act_in,),
                                  output=TensorSpec((in_dim, batch))))
            ann[f"{prefix}.act{j}.T"] = _spec(None, data_axis)
            dw = g.add(MatMulOp(name=f"{w}.grad", inputs=(actT, drelu),
                                output=TensorSpec((in_dim, out_dim)),
                                m=in_dim, k=batch, n=out_dim))
            elementwise(f"{w}.update", (w, dw),
                        TensorSpec((in_dim, out_dim)), 4.0)
        return dx

    dtop_in = tower_backward("top", loss, top_chain)
    # Split the concat gradient back to the bottom tower's output width.
    dbottom = elementwise(
        "dconcat.bottom", (dtop_in,),
        TensorSpec((batch, config.bottom_mlp[-1])), 0.0)
    tower_backward("bottom", dbottom, bottom_chain)

    # -- embedding backward ----------------------------------------------------------------
    # Gradient vectors return to the row owners (all-to-all), then the
    # owners apply the sparse optimizer to their rows.
    chips_on_axis = mesh.axis_size(table_axis)
    grad_spec = TensorSpec((batch, width))
    for t in range(config.num_tables):
        demb = elementwise(f"demb{t}", (dtop_in,), grad_spec, 1.0)
        local_bytes = grad_spec.num_bytes / max(chips_on_axis, 1)
        back = g.add(AllToAllOp(
            name=f"demb{t}.alltoall", inputs=(demb,), output=grad_spec,
            mesh_axis=table_axis, comm_bytes=float(local_bytes)))
        ann[f"demb{t}.alltoall"] = _spec(data_axis, None)
        elementwise(f"table{t}.update", (f"table{t}", back),
                    TensorSpec((config.vocab_per_table, width)), 4.0)

    return g, ann


# ---------------------------------------------------------------------------
# MLP (minimal)
# ---------------------------------------------------------------------------

def mlp_step_graph(dims: tuple[int, ...], *, global_batch: int,
                   data_axis: str | None = "data",
                   model_axis: str | None = None
                   ) -> tuple[ComputationGraph, Annotations]:
    """Forward+backward+update of a plain MLP — the smallest real graph.

    Args:
        dims: layer widths including input, e.g. (1024, 4096, 1024).
        global_batch: rows per step.
        data_axis: mesh axis sharding the batch (None: no data parallel).
        model_axis: mesh axis column-sharding odd layers / row-sharding
            even layers, Megatron-style (None: no model parallel).
    """
    if len(dims) < 2:
        raise ConfigurationError("an MLP needs at least input+output dims")
    g = ComputationGraph(name="mlp-step")
    ann: Annotations = {}
    batch = global_batch

    x = g.add(InputOp(name="x", output=TensorSpec((batch, dims[0]))))
    ann["x"] = _spec(data_axis, None)
    forward: list[tuple[str, str, int, int]] = []
    for j, (k, n) in enumerate(zip(dims, dims[1:])):
        w = g.add(ParameterOp(name=f"w{j}", output=TensorSpec((k, n))))
        if model_axis is not None:
            ann[f"w{j}"] = (_spec(None, model_axis) if j % 2 == 0
                            else _spec(model_axis, None))
        else:
            ann[f"w{j}"] = _spec(None, None)
        y = g.add(MatMulOp(name=f"mm{j}", inputs=(x, w),
                           output=TensorSpec((batch, n)), m=batch, k=k, n=n))
        act = g.add(ElementwiseOp(name=f"act{j}", inputs=(y,),
                                  output=TensorSpec((batch, n)),
                                  flops_per_element=1.0))
        forward.append((w, x, k, n))
        x = act

    dx = g.add(ElementwiseOp(name="dloss", inputs=(x,),
                             output=TensorSpec((batch, dims[-1])),
                             flops_per_element=2.0))
    for j, (w, act_in, k, n) in reversed(list(enumerate(forward))):
        wT = g.add(FusionOp(name=f"w{j}.T", inputs=(w,),
                            output=TensorSpec((n, k))))
        if model_axis is not None:
            ann[f"w{j}.T"] = (_spec(model_axis, None) if j % 2 == 0
                              else _spec(None, model_axis))
        dx_new = g.add(MatMulOp(name=f"dmm{j}", inputs=(dx, wT),
                                output=TensorSpec((batch, k)),
                                m=batch, k=n, n=k))
        actT = g.add(FusionOp(name=f"act{j}.in.T", inputs=(act_in,),
                              output=TensorSpec((k, batch))))
        ann[f"act{j}.in.T"] = _spec(None, data_axis)
        dw = g.add(MatMulOp(name=f"w{j}.grad", inputs=(actT, dx),
                            output=TensorSpec((k, n)), m=k, k=batch, n=n))
        g.add(ElementwiseOp(name=f"w{j}.update", inputs=(w, dw),
                            output=TensorSpec((k, n)), flops_per_element=4.0))
        dx = dx_new

    return g, ann

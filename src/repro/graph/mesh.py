"""Logical device mesh over a TPU v4 slice.

Named parallelism axes (data / model1 / model2 / pipeline, matching the
PartitionSpec of Table 3) are laid out over whole torus dimensions of a
slice — the paper's Section 2.7 usage model.  The mesh owns the
translation from axis names to :class:`~repro.network.alphabeta.AxisGeometry`
so the graph scheduler can price collectives per axis and recognise that
axes on disjoint torus dimensions use disjoint links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.network.alphabeta import (AxisGeometry, CollectiveCostModel,
                                     DEFAULT_ALPHA)
from repro.parallelism.mapping import map_axes_to_torus
from repro.parallelism.spec import PartitionSpec

# Table 4: TPU v4 has 6 ICI links at 50 GB/s each (per direction per dim).
TPUV4_LINK_BANDWIDTH = 50e9


@dataclass(frozen=True)
class MeshAxis:
    """One named parallelism axis and the torus dimensions it spans."""

    name: str
    size: int
    torus_dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError(
                f"axis {self.name!r} size must be >= 1, got {self.size}")


class DeviceMesh:
    """Maps parallelism axes onto the torus dimensions of one slice.

    Args:
        shape: the slice topology shape (x, y, z).
        axes: ordered axis definitions; their torus dimensions must be
            disjoint and their sizes must equal the product of the claimed
            dimension extents.  Size-1 axes may claim no dimensions.
        link_bandwidth: per-direction ICI link bandwidth (B/s).
        wrap: whether the slice closes into a torus (False for sub-4^3
            mesh slices).
        alpha: per-step collective latency.
    """

    def __init__(self, shape: tuple[int, int, int], axes: list[MeshAxis], *,
                 link_bandwidth: float = TPUV4_LINK_BANDWIDTH,
                 wrap: bool = True, alpha: float = DEFAULT_ALPHA) -> None:
        self.shape = tuple(shape)
        if len(self.shape) != 3:
            raise ConfigurationError(f"shape must be 3D, got {shape}")
        self.link_bandwidth = link_bandwidth
        self.wrap = wrap
        self.alpha = alpha
        self._axes: dict[str, MeshAxis] = {}
        claimed: set[int] = set()
        for axis in axes:
            if axis.name in self._axes:
                raise ConfigurationError(f"duplicate axis {axis.name!r}")
            for dim in axis.torus_dims:
                if dim not in (0, 1, 2):
                    raise ConfigurationError(
                        f"axis {axis.name!r} claims invalid dim {dim}")
                if dim in claimed:
                    raise ConfigurationError(
                        f"axis {axis.name!r} re-claims torus dim {dim}")
                claimed.add(dim)
            spanned = math.prod(self.shape[d] for d in axis.torus_dims)
            if spanned != axis.size:
                raise ConfigurationError(
                    f"axis {axis.name!r} size {axis.size} != product of "
                    f"claimed dims {spanned}")
            self._axes[axis.name] = axis
        total = math.prod(a.size for a in self._axes.values())
        if total != math.prod(self.shape):
            raise ConfigurationError(
                f"axis sizes multiply to {total}, slice has "
                f"{math.prod(self.shape)} chips")

    # -- axis queries -----------------------------------------------------------

    @property
    def num_chips(self) -> int:
        """Chips in the slice."""
        return math.prod(self.shape)

    @property
    def axis_names(self) -> list[str]:
        """Axis names in declaration order."""
        return list(self._axes)

    def axis(self, name: str) -> MeshAxis:
        """Look up one axis; raises for unknown names."""
        if name not in self._axes:
            raise ConfigurationError(
                f"unknown mesh axis {name!r}; have {self.axis_names}")
        return self._axes[name]

    def axis_size(self, name: str) -> int:
        """Group size of one axis."""
        return self.axis(name).size

    @property
    def axis_sizes(self) -> dict[str, int]:
        """Axis name -> size, for sharding arithmetic."""
        return {name: axis.size for name, axis in self._axes.items()}

    # -- geometry / pricing ------------------------------------------------------

    def axis_geometry(self, name: str) -> AxisGeometry:
        """Ring geometry of one axis (size-1 axes get a degenerate ring)."""
        axis = self.axis(name)
        rings = tuple(self.shape[d] for d in axis.torus_dims) or (1,)
        return AxisGeometry(ring_sizes=rings,
                            link_bandwidth=self.link_bandwidth,
                            wrap=self.wrap, alpha=self.alpha)

    def cost_model(self) -> CollectiveCostModel:
        """Collective pricing for every axis of this mesh."""
        return CollectiveCostModel(
            {name: self.axis_geometry(name) for name in self._axes})

    def describe(self) -> str:
        """One-line summary, e.g. ``mesh 8x8x8: data=8(d0) model1=64(d1,d2)``."""
        parts = []
        for name, axis in self._axes.items():
            dims = ",".join(f"d{d}" for d in axis.torus_dims) or "-"
            parts.append(f"{name}={axis.size}({dims})")
        a, b, c = self.shape
        return f"mesh {a}x{b}x{c}: " + " ".join(parts)


def mesh_from_partition_spec(shape: tuple[int, int, int],
                             spec: PartitionSpec, *,
                             link_bandwidth: float = TPUV4_LINK_BANDWIDTH,
                             alpha: float = DEFAULT_ALPHA) -> DeviceMesh:
    """Build the mesh a Table 3 PartitionSpec induces on a slice.

    Uses the same axis-to-dimension assignment search as the parallelism
    cost model; raises when the spec does not fit the topology (the
    situation OCS topology reconfiguration exists to avoid).
    """
    mapping = map_axes_to_torus(shape, spec)
    if mapping is None:
        raise ConfigurationError(
            f"partition spec {spec} does not map onto topology {shape}")
    names = ("pipeline", "data", "model1", "model2")
    axes = [MeshAxis(name=name, size=size, torus_dims=mapping.dims_of(name))
            for name, size in zip(names, spec.axes)]
    return DeviceMesh(shape, axes, link_bandwidth=link_bandwidth, alpha=alpha)

"""Event-driven execution of a partitioned graph on one TPU v4 chip.

This is the reproduction of the paper's own evaluation vehicle: "an
internal event-driven simulator that operates at the TensorFlow graph
operation level" (Section 7.3).  Engines:

* ``tensorcore`` — matmuls and elementwise ops, priced by a roofline
  blend of MXU FLOPs and HBM traffic;
* ``sparsecore`` — embedding lookups (separate cores, so dense compute,
  SC work, and ICI transfers parallelize — Section 3.5);
* ``ici:<axis>`` — one channel per mesh axis.  Axes occupy disjoint
  torus dimensions (Section 2.7), so collectives on different axes run
  concurrently, while collectives on the same axis serialize.

Ops dispatch when their inputs complete; each engine runs one op at a
time in topological priority order.  With ``overlap_comm=False`` the
collectives are forced onto the tensorcore engine, which is the classic
"communication blocks compute" baseline the overlap transform
(:mod:`repro.graph.overlap`, Wang et al. [59]) is measured against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.graph.mesh import DeviceMesh
from repro.graph.ops import (CollectiveOp, ElementwiseOp, EmbeddingLookupOp,
                             FusionOp, InputOp, MatMulOp, Op, ParameterOp)
from repro.graph.spmd import ShardedGraph
from repro.graph.trace import ExecutionTrace, OpRecord
from repro.sim.events import Simulator


@dataclass(frozen=True)
class ChipTimingModel:
    """First-order per-op timing for one chip (TPU v4 defaults, Table 4).

    Attributes:
        peak_flops: MXU peak (bf16).
        mxu_efficiency: sustained fraction of peak for dense matmuls.
        vpu_flops: peak elementwise rate (128-lane VPU, 16 ALUs/lane,
            2 TensorCores at 1.05 GHz, 2 flops/ALU).
        hbm_bandwidth: HBM bytes/second (Table 4: 1200 GB/s).
        sc_bandwidth: SparseCore-visible gather/scatter bandwidth; SC
            tiles see HBM through 16 channels at somewhat lower
            efficiency for small accesses.
        op_overhead: fixed per-op dispatch cost (XLA fusion leaves a
            few thousand ops per step, each with launch overhead).
    """

    peak_flops: float = 275e12
    mxu_efficiency: float = 0.6
    vpu_flops: float = 8.6e12
    hbm_bandwidth: float = 1200e9
    sc_bandwidth: float = 800e9
    op_overhead: float = 1e-6

    def compute_seconds(self, op: Op, local_flops: float,
                        local_bytes: float) -> float:
        """Duration of one compute op on its engine."""
        if isinstance(op, (InputOp, ParameterOp, FusionOp)):
            return 0.0
        if isinstance(op, MatMulOp):
            flop_time = local_flops / (self.peak_flops * self.mxu_efficiency)
            memory_time = local_bytes / self.hbm_bandwidth
            return max(flop_time, memory_time) + self.op_overhead
        if isinstance(op, EmbeddingLookupOp):
            gather_time = local_bytes / self.sc_bandwidth
            flop_time = local_flops / self.vpu_flops
            return max(gather_time, flop_time) + self.op_overhead
        if isinstance(op, ElementwiseOp):
            flop_time = local_flops / self.vpu_flops
            memory_time = local_bytes / self.hbm_bandwidth
            return max(flop_time, memory_time) + self.op_overhead
        raise ConfigurationError(
            f"no timing rule for compute op kind {op.kind!r}")


TPUV4_TIMING = ChipTimingModel()

# TPU v3 for cross-generation studies (Table 4: 123 TFLOPS, 900 GB/s).
TPUV3_TIMING = ChipTimingModel(peak_flops=123e12, hbm_bandwidth=900e9,
                               sc_bandwidth=600e9, vpu_flops=7.7e12)


class GraphScheduler:
    """Dependency-driven executor over a :class:`ShardedGraph`."""

    def __init__(self, sharded: ShardedGraph, *,
                 chip: ChipTimingModel = TPUV4_TIMING,
                 overlap_comm: bool = True) -> None:
        self.sharded = sharded
        self.mesh: DeviceMesh = sharded.mesh
        self.chip = chip
        self.overlap_comm = overlap_comm
        self._cost_model = self.mesh.cost_model()

    # -- engine assignment ---------------------------------------------------------

    def engine_of(self, op: Op) -> str:
        """Engine an op occupies while executing."""
        if isinstance(op, CollectiveOp):
            if not self.overlap_comm:
                return "tensorcore"
            return f"ici:{op.mesh_axis}"
        if isinstance(op, EmbeddingLookupOp):
            return "sparsecore"
        return "tensorcore"

    def duration_of(self, op: Op) -> float:
        """Execution time of one op."""
        if isinstance(op, CollectiveOp):
            return self._cost_model.time(op.collective_kind, op.mesh_axis,
                                         op.comm_bytes)
        return self.chip.compute_seconds(
            op, self.sharded.local_flops[op.name],
            self.sharded.local_bytes[op.name])

    # -- simulation -------------------------------------------------------------------

    def run(self) -> ExecutionTrace:
        """Execute the graph; returns the validated trace."""
        graph = self.sharded.graph
        graph.validate()
        sim = Simulator()
        trace = ExecutionTrace(
            dependencies={op.name: op.inputs for op in graph.ops()})
        priority = {op.name: i for i, op in enumerate(graph.ops())}
        waiting = {op.name: len(op.inputs) for op in graph.ops()}
        ready: dict[str, list[tuple[int, str]]] = {}
        engine_free: dict[str, bool] = {}

        def enqueue(op: Op) -> None:
            engine = self.engine_of(op)
            heapq.heappush(ready.setdefault(engine, []),
                           (priority[op.name], op.name))
            engine_free.setdefault(engine, True)
            dispatch(engine)

        def dispatch(engine: str) -> None:
            if not engine_free.get(engine) or not ready.get(engine):
                return
            _, name = heapq.heappop(ready[engine])
            op = graph.op(name)
            engine_free[engine] = False
            start = sim.now
            duration = self.duration_of(op)
            def finish(op: Op = op, engine: str = engine,
                       start: float = start) -> None:
                trace.records.append(OpRecord(
                    name=op.name, kind=op.kind, engine=engine,
                    start=start, end=sim.now))
                engine_free[engine] = True
                for consumer in graph.consumers(op.name):
                    waiting[consumer] -= 1
                    if waiting[consumer] == 0:
                        enqueue(graph.op(consumer))
                dispatch(engine)
            sim.schedule(duration, finish)

        for op in graph.ops():
            if waiting[op.name] == 0:
                enqueue(op)
        sim.run(max_events=10 * len(graph) + 16)
        if len(trace.records) != len(graph):
            missing = len(graph) - len(trace.records)
            raise ConfigurationError(
                f"{missing} ops never executed — cyclic or disconnected graph")
        trace.validate()
        return trace


def simulate(sharded: ShardedGraph, *, chip: ChipTimingModel = TPUV4_TIMING,
             overlap_comm: bool = True) -> ExecutionTrace:
    """One-call helper: schedule a partitioned graph and return its trace."""
    return GraphScheduler(sharded, chip=chip,
                          overlap_comm=overlap_comm).run()

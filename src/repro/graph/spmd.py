"""GSPMD-style sharding propagation and collective insertion.

The paper's Table 3 options ("1D/2D activation/weight partitioning")
come from GSPMD (Xu et al. [63]): every tensor carries a
dimension-to-mesh-axis sharding, shardings propagate through ops, and
communication materialises exactly where the math demands it:

* a matmul whose contracted dimension is sharded on the same axis on
  both sides computes a *partial sum* — resolved by an all-reduce at
  the first consumer that needs real values (for weight gradients that
  consumer is the optimizer, so the data-parallel gradient all-reduce
  falls out of propagation rather than being special-cased);
* a matmul whose contracted dimension is sharded on one side only
  all-gathers that side first (the resharding cost 2D activation
  sharding pays around every matmul pair);
* an embedding lookup against a row-sharded table exchanges vectors
  with an all-to-all over the sharding axis (Section 3.4's
  "variable-length all-to-all exchange").

The result is a :class:`ShardedGraph`: the rewritten graph (collectives
inserted) plus per-chip FLOPs and memory traffic for every op — the
input the event-driven scheduler prices.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.graph.graph import ComputationGraph
from repro.graph.mesh import DeviceMesh
from repro.graph.ops import (AllGatherOp, AllReduceOp, AllToAllOp,
                             CollectiveOp, ElementwiseOp, EmbeddingLookupOp,
                             FusionOp, InputOp, MatMulOp, Op, ParameterOp)
from repro.graph.tensor import ShardingSpec, local_shape, replicated


@dataclass
class ShardedGraph:
    """A partitioned program: graph with collectives + per-chip costs.

    Attributes:
        graph: the rewritten graph, collectives included.
        mesh: the device mesh the program runs on.
        shardings: op name -> output sharding.
        local_flops: op name -> per-chip FLOPs.
        local_bytes: op name -> per-chip HBM traffic (compute ops only;
            collectives move bytes over ICI, recorded on the op itself).
    """

    graph: ComputationGraph
    mesh: DeviceMesh
    shardings: dict[str, ShardingSpec] = field(default_factory=dict)
    local_flops: dict[str, float] = field(default_factory=dict)
    local_bytes: dict[str, float] = field(default_factory=dict)

    def per_chip_flops(self) -> float:
        """Total per-chip compute FLOPs (collectives excluded)."""
        # detlint: ignore[D005] local_flops mirrors the graph's build order
        return sum(flops for name, flops in self.local_flops.items()
                   if not self.graph.op(name).is_collective)

    def comm_bytes_by_axis(self) -> dict[str, float]:
        """Per-chip ICI bytes per mesh axis."""
        out: dict[str, float] = {}
        for op in self.graph.collectives():
            out[op.mesh_axis] = out.get(op.mesh_axis, 0.0) + op.comm_bytes
        return out

    def describe(self) -> str:
        """One-line summary of the partitioned program."""
        comm = ", ".join(f"{axis}={num_bytes / 2**20:.1f}MiB"
                         for axis, num_bytes
                         in sorted(self.comm_bytes_by_axis().items()))
        return (f"{self.graph.describe()}; per-chip "
                f"{self.per_chip_flops():.3e} FLOPs; comm {comm or 'none'}")


class _Partitioner:
    """Single-pass propagation over a graph in topological order."""

    def __init__(self, source: ComputationGraph, mesh: DeviceMesh,
                 annotations: dict[str, ShardingSpec]) -> None:
        self.source = source
        self.mesh = mesh
        self.annotations = dict(annotations)
        self.out = ComputationGraph(name=f"{source.name}@{mesh.describe()}")
        self.sharded = ShardedGraph(graph=self.out, mesh=mesh)
        self._unique = 0
        self._resolved: dict[str, str] = {}
        self._gathered: dict[tuple[str, int], str] = {}

    # -- bookkeeping helpers -------------------------------------------------

    def _axis_sizes(self) -> dict[str, int]:
        return self.mesh.axis_sizes

    def _local(self, name: str) -> tuple[int, ...]:
        """Per-chip shape of an already-partitioned tensor."""
        op = self.out.op(name)
        return local_shape(op.output, self.sharded.shardings[name],
                           self._axis_sizes())

    def _local_bytes_of(self, name: str) -> float:
        op = self.out.op(name)
        return math.prod(self._local(name)) * op.output.dtype_bytes

    def _emit(self, op: Op, sharding: ShardingSpec, *,
              flops: float | None = None) -> str:
        """Add an op to the output graph and record its per-chip costs."""
        self.out.add(op)
        self.sharded.shardings[op.name] = sharding
        shape = local_shape(op.output, sharding, self._axis_sizes())
        elements = math.prod(shape)
        if flops is None:
            global_elements = op.output.num_elements
            flops = op.flops() * elements / global_elements
        self.sharded.local_flops[op.name] = flops
        out_bytes = elements * op.output.dtype_bytes
        in_bytes = sum(self._local_bytes_of(i) for i in op.inputs)
        if isinstance(op, CollectiveOp):
            self.sharded.local_bytes[op.name] = 0.0
        elif isinstance(op, (InputOp, ParameterOp, FusionOp)):
            self.sharded.local_bytes[op.name] = 0.0
        else:
            self.sharded.local_bytes[op.name] = in_bytes + out_bytes
        return op.name

    def _fresh(self, base: str, suffix: str) -> str:
        self._unique += 1
        return f"{base}.{suffix}{self._unique}"

    # -- collective insertion ---------------------------------------------------

    def _resolve_partial(self, name: str) -> str:
        """All-reduce away any pending partial sums on `name`.

        Cached so several consumers of one partial tensor share a single
        all-reduce instead of each paying for their own.
        """
        if name in self._resolved:
            return self._resolved[name]
        sharding = self.sharded.shardings[name]
        current = name
        for axis in sharding.partial:
            resolved = sharding.drop_partial()
            spec = self.out.op(current).output
            shape = local_shape(spec, resolved, self._axis_sizes())
            num_bytes = math.prod(shape) * spec.dtype_bytes
            current = self._emit(
                AllReduceOp(name=self._fresh(name, "allreduce"),
                            inputs=(current,), output=spec,
                            mesh_axis=axis, comm_bytes=float(num_bytes)),
                resolved)
            sharding = resolved
        self._resolved[name] = current
        return current

    def _gather_dim(self, name: str, dim: int) -> str:
        """All-gather one sharded dimension of `name` back to full size."""
        if (name, dim) in self._gathered:
            return self._gathered[(name, dim)]
        sharding = self.sharded.shardings[name]
        axis = sharding.axes[dim]
        if axis is None:
            return name
        gathered = sharding.with_dim(dim, None)
        spec = self.out.op(name).output
        shape = local_shape(spec, gathered, self._axis_sizes())
        num_bytes = math.prod(shape) * spec.dtype_bytes
        result = self._emit(
            AllGatherOp(name=self._fresh(name, "allgather"),
                        inputs=(name,), output=spec, mesh_axis=axis,
                        comm_bytes=float(num_bytes), gather_dim=dim),
            gathered)
        self._gathered[(name, dim)] = result
        return result

    # -- op handlers --------------------------------------------------------------

    def _sharding_for_source(self, op: Op, default: ShardingSpec) -> ShardingSpec:
        spec = self.annotations.get(op.name, default)
        if spec.rank != op.output.rank:
            raise ConfigurationError(
                f"annotation for {op.name!r} has rank {spec.rank}, "
                f"tensor has rank {op.output.rank}")
        return spec

    def _handle_source(self, op: Op) -> None:
        sharding = self._sharding_for_source(op, replicated(op.output.rank))
        self._emit(op, sharding, flops=0.0)

    def _handle_matmul(self, op: MatMulOp, remap: dict[str, str]) -> None:
        lhs = self._resolve_partial(remap[op.inputs[0]])
        rhs = self._resolve_partial(remap[op.inputs[1]])
        lhs_spec = self.sharded.shardings[lhs]
        rhs_spec = self.sharded.shardings[rhs]
        if op.batch_local:
            self._handle_batch_local_matmul(op, lhs, rhs)
            return
        lhs_contract = lhs_spec.axes[-1]
        rhs_contract = rhs_spec.axes[-2] if rhs_spec.rank >= 2 else None
        partial: tuple[str, ...] = ()
        if lhs_contract is not None and lhs_contract == rhs_contract:
            partial = (lhs_contract,)          # both sharded: partial sums
        else:
            if lhs_contract is not None:       # one-sided: all-gather it
                lhs = self._gather_dim(lhs, lhs_spec.rank - 1)
                lhs_spec = self.sharded.shardings[lhs]
            if rhs_contract is not None:
                rhs = self._gather_dim(rhs, rhs_spec.rank - 2)
                rhs_spec = self.sharded.shardings[rhs]
        out_axes = list(lhs_spec.axes[:-1])
        n_axis = rhs_spec.axes[-1]
        if n_axis in out_axes or n_axis in partial:
            n_axis = None                      # an axis shards one dim only
        out_axes.append(n_axis)
        if len(out_axes) != op.output.rank:
            raise ConfigurationError(
                f"matmul {op.name!r}: output rank {op.output.rank} does not "
                f"match lhs rank {lhs_spec.rank}")
        sharding = ShardingSpec(axes=tuple(out_axes), partial=partial)
        new = dataclasses.replace(op, inputs=(lhs, rhs))
        lhs_local = math.prod(self._local(lhs))
        n_local = op.n
        if n_axis is not None:
            n_local = op.n // self.mesh.axis_size(n_axis)
        self._emit(new, sharding, flops=2.0 * lhs_local * n_local)

    def _handle_batch_local_matmul(self, op: MatMulOp, lhs: str,
                                   rhs: str) -> None:
        """Head-local contraction: no resharding, FLOPs scale with shard."""
        lhs_spec = self.sharded.shardings[lhs]
        rhs_spec = self.sharded.shardings[rhs]
        if set(lhs_spec.sharded_axes) != set(rhs_spec.sharded_axes):
            raise ConfigurationError(
                f"batch-local matmul {op.name!r} needs identically-sharded "
                f"operands, got {lhs_spec.label()} vs {rhs_spec.label()}")
        sharding = self.annotations.get(
            op.name, ShardingSpec(axes=lhs_spec.axes[:op.output.rank]))
        if sharding.rank != op.output.rank:
            raise ConfigurationError(
                f"batch-local matmul {op.name!r}: sharding rank "
                f"{sharding.rank} != output rank {op.output.rank}")
        share = (math.prod(self._local(lhs))
                 / self.out.op(lhs).output.num_elements)
        new = dataclasses.replace(op, inputs=(lhs, rhs))
        self._emit(new, sharding, flops=op.flops() * share)

    def _handle_elementwise(self, op: Op, remap: dict[str, str]) -> None:
        inputs = [self._resolve_partial(remap[i]) for i in op.inputs]
        if not inputs:
            self._emit(dataclasses.replace(op, inputs=()),
                       replicated(op.output.rank))
            return
        target = self.sharded.shardings[inputs[0]]
        aligned = [inputs[0]]
        for name in inputs[1:]:
            spec = self.sharded.shardings[name]
            if spec.rank != target.rank:
                raise ConfigurationError(
                    f"elementwise {op.name!r}: rank mismatch between "
                    f"{inputs[0]!r} and {name!r}")
            for dim in range(spec.rank):
                if spec.axes[dim] != target.axes[dim]:
                    if spec.axes[dim] is not None:
                        name = self._gather_dim(name, dim)
                        spec = self.sharded.shardings[name]
                    # target sharded / input replicated: local slice, free.
            aligned.append(name)
        new = dataclasses.replace(op, inputs=tuple(aligned))
        self._emit(new, ShardingSpec(axes=target.axes))

    def _handle_embedding(self, op: EmbeddingLookupOp,
                          remap: dict[str, str]) -> None:
        table = remap[op.inputs[0]]
        ids = remap[op.inputs[1]]
        table_spec = self.sharded.shardings[table]
        ids_spec = self.sharded.shardings[ids]
        out_axes = [ids_spec.axes[0] if ids_spec.rank else None]
        out_axes += [None] * (op.output.rank - 1)
        sharding = self._sharding_for_source(
            op, ShardingSpec(axes=tuple(out_axes)))
        new = dataclasses.replace(op, inputs=(table, ids))
        row_axis = table_spec.axes[0]
        scale = 1.0
        for axis in sharding.sharded_axes:
            scale /= self.mesh.axis_size(axis)
        name = self._emit(new, sharding, flops=op.flops() * scale)
        if row_axis is not None:
            # Row-sharded table: gathered vectors live on the row owners;
            # exchange them back to the batch owners (Section 3.4).
            num_bytes = self._local_bytes_of(name)
            self._emit(
                AllToAllOp(name=self._fresh(op.name, "alltoall"),
                           inputs=(name,), output=op.output,
                           mesh_axis=row_axis, comm_bytes=float(num_bytes)),
                sharding)

    def _handle_collective(self, op: CollectiveOp,
                           remap: dict[str, str]) -> None:
        inputs = tuple(remap[i] for i in op.inputs)
        base = self.sharded.shardings[inputs[0]] if inputs else \
            replicated(op.output.rank)
        sharding = self.annotations.get(op.name, base.drop_partial())
        self._emit(dataclasses.replace(op, inputs=inputs), sharding)

    def _handle_fusion(self, op: FusionOp, remap: dict[str, str]) -> None:
        inputs = tuple(remap[i] for i in op.inputs)
        base = self.sharded.shardings[inputs[0]] if inputs else \
            replicated(op.output.rank)
        # Fusions double as zero-cost layout changes (transposes), whose
        # output sharding the builder states via an annotation.  A layout
        # change never resolves partial sums, so the input's pending
        # partial axes carry through.
        sharding = self.annotations.get(op.name, base)
        if sharding is not base and base.partial:
            sharding = ShardingSpec(axes=sharding.axes, partial=base.partial)
        if sharding.rank != op.output.rank:
            raise ConfigurationError(
                f"fusion {op.name!r}: sharding rank {sharding.rank} != "
                f"output rank {op.output.rank}")
        self._emit(dataclasses.replace(op, inputs=inputs), sharding,
                   flops=0.0)

    # -- driver ---------------------------------------------------------------------

    def run(self) -> ShardedGraph:
        remap: dict[str, str] = {}
        for op in self.source.ops():
            if isinstance(op, (InputOp, ParameterOp)):
                self._handle_source(op)
                remap[op.name] = op.name
            elif isinstance(op, MatMulOp):
                self._handle_matmul(op, remap)
                remap[op.name] = op.name
            elif isinstance(op, EmbeddingLookupOp):
                self._handle_embedding(op, remap)
                last = self.out.ops()[-1].name
                remap[op.name] = last
            elif isinstance(op, FusionOp):
                self._handle_fusion(op, remap)
                remap[op.name] = op.name
            elif isinstance(op, CollectiveOp):
                self._handle_collective(op, remap)
                remap[op.name] = op.name
            elif isinstance(op, ElementwiseOp):
                self._handle_elementwise(op, remap)
                remap[op.name] = op.name
            else:
                raise ConfigurationError(
                    f"partitioner has no rule for op kind {op.kind!r}")
        return self.sharded


def partition(graph: ComputationGraph, mesh: DeviceMesh,
              annotations: dict[str, ShardingSpec] | None = None
              ) -> ShardedGraph:
    """Partition `graph` over `mesh` using GSPMD-style propagation.

    Args:
        graph: the logical (unpartitioned) program.
        mesh: named parallelism axes over a slice.
        annotations: output shardings for inputs/parameters (and any op
            whose inferred sharding should be overridden).  Unannotated
            sources are replicated.

    Returns:
        The partitioned program with collectives inserted and per-chip
        costs computed.
    """
    graph.validate()
    return _Partitioner(graph, mesh, annotations or {}).run()

"""Communication/computation overlap via decomposition (Wang et al. [59]).

Section 7.10 credits TPU v4's LLM efficiency to partitioning "across
more chips with effective compute-communication overlap", citing the
ASPLOS'23 decomposition paper: a collective and the matmul that
produces or consumes its data are split into chunks so chunk *i*'s
transfer hides under chunk *i-1*'s compute.

The transform here operates on a partitioned program
(:class:`~repro.graph.spmd.ShardedGraph`): it replaces one
collective+matmul pair with `chunks` interleaved pairs plus a zero-cost
fusion carrying the original names, so every downstream consumer (and
the event-driven scheduler) is oblivious.  Scheduling the transformed
graph with ``overlap_comm=True`` then exhibits the overlap — no
special-case timing math, the pipelining emerges from the dependency
structure.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.graph.graph import ComputationGraph
from repro.graph.ops import CollectiveOp, FusionOp, MatMulOp, Op
from repro.graph.spmd import ShardedGraph


def _chunked_name(name: str, i: int) -> str:
    return f"{name}.part{i}"


def decompose_pair(sharded: ShardedGraph, collective_name: str,
                   matmul_name: str, chunks: int) -> ShardedGraph:
    """Split one collective+matmul dependency into `chunks` chunk pairs.

    Either order is supported: a matmul consuming a collective's output
    (all-gather before the matmul) or a collective consuming a matmul's
    output (all-reduce/reduce-scatter after it).

    Args:
        sharded: the partitioned program to transform.
        collective_name: name of the collective op.
        matmul_name: name of the dependent (or producing) matmul.
        chunks: number of interleaved chunk pairs (>= 1).

    Returns:
        A new :class:`ShardedGraph`; the input is left untouched.
    """
    if chunks < 1:
        raise ConfigurationError(f"chunks must be >= 1, got {chunks}")
    graph = sharded.graph
    collective = graph.op(collective_name)
    matmul = graph.op(matmul_name)
    if not isinstance(collective, CollectiveOp):
        raise ConfigurationError(f"{collective_name!r} is not a collective")
    if not isinstance(matmul, MatMulOp):
        raise ConfigurationError(f"{matmul_name!r} is not a matmul")
    if collective_name in matmul.inputs:
        first, second = collective, matmul
    elif matmul_name in collective.inputs:
        first, second = matmul, collective
    else:
        raise ConfigurationError(
            f"{collective_name!r} and {matmul_name!r} are not adjacent")

    out = ComputationGraph(name=graph.name)
    new = ShardedGraph(graph=out, mesh=sharded.mesh,
                       shardings=dict(sharded.shardings),
                       local_flops=dict(sharded.local_flops),
                       local_bytes=dict(sharded.local_bytes))

    def add_chunks(op: Op, chunk_dep: str | None = None) -> None:
        """Emit `chunks` scaled copies plus the name-preserving fusion.

        When `chunk_dep` names the partner op, chunk *i* consumes the
        partner's chunk *i* directly — that per-chunk dependency is
        what lets the scheduler pipeline transfer and compute.
        """
        names = []
        for i in range(chunks):
            inputs = tuple(
                _chunked_name(inp, i) if inp == chunk_dep else inp
                for inp in op.inputs)
            chunk = dataclasses.replace(op, name=_chunked_name(op.name, i),
                                        inputs=inputs)
            if isinstance(chunk, CollectiveOp):
                chunk = dataclasses.replace(
                    chunk, comm_bytes=op.comm_bytes / chunks)
            out.add(chunk)
            names.append(chunk.name)
            new.shardings[chunk.name] = sharded.shardings[op.name]
            new.local_flops[chunk.name] = \
                sharded.local_flops[op.name] / chunks
            new.local_bytes[chunk.name] = \
                sharded.local_bytes[op.name] / chunks
        fusion = FusionOp(name=op.name, inputs=tuple(names),
                          output=op.output)
        out.add(fusion)
        new.shardings[op.name] = sharded.shardings[op.name]
        new.local_flops[op.name] = 0.0
        new.local_bytes[op.name] = 0.0

    for op in graph.ops():
        if op.name == first.name:
            add_chunks(first)
        elif op.name == second.name:
            add_chunks(second, chunk_dep=first.name)
        else:
            out.add(op)
    return new


def overlappable_pairs(sharded: ShardedGraph) -> list[tuple[str, str]]:
    """(collective, matmul) pairs eligible for decomposition.

    A pair qualifies when the matmul is the *only* consumer of the
    collective (or vice versa), so chunking cannot change semantics for
    third parties.
    """
    graph = sharded.graph
    pairs = []
    for op in graph.collectives():
        consumers = graph.consumers(op.name)
        if len(consumers) == 1 and isinstance(graph.op(consumers[0]),
                                              MatMulOp):
            pairs.append((op.name, consumers[0]))
            continue
        if len(op.inputs) == 1:
            producer = graph.op(op.inputs[0])
            if isinstance(producer, MatMulOp) \
                    and graph.consumers(producer.name) == [op.name]:
                pairs.append((op.name, producer.name))
    return pairs


def decompose_all(sharded: ShardedGraph, chunks: int) -> ShardedGraph:
    """Apply :func:`decompose_pair` to every eligible pair.

    An op can appear in two pairs (a matmul fed by an all-gather whose
    result feeds an all-reduce); the first decomposition turns it into
    a fusion, so later pairs re-check types and skip it.
    """
    current = sharded
    for collective_name, matmul_name in overlappable_pairs(sharded):
        graph = current.graph
        if not isinstance(graph.op(collective_name), CollectiveOp):
            continue
        if not isinstance(graph.op(matmul_name), MatMulOp):
            continue
        current = decompose_pair(current, collective_name, matmul_name,
                                 chunks)
    return current


def overlap_speedup(sharded: ShardedGraph, chunks: int = 4, *,
                    chip=None) -> dict[str, float]:
    """Step times without overlap, with overlap, and with decomposition.

    Returns a dict with keys ``serial`` (collectives block compute),
    ``overlap`` (independent collectives run concurrently), and
    ``decomposed`` (plus chunked dependent pairs) — the three rungs of
    the [59] ablation.
    """
    from repro.graph.schedule import TPUV4_TIMING, simulate
    chip = chip or TPUV4_TIMING
    serial = simulate(sharded, chip=chip, overlap_comm=False).makespan
    overlapped = simulate(sharded, chip=chip, overlap_comm=True).makespan
    decomposed_graph = decompose_all(sharded, chunks)
    decomposed = simulate(decomposed_graph, chip=chip,
                          overlap_comm=True).makespan
    return {"serial": serial, "overlap": overlapped,
            "decomposed": decomposed}

"""The computation graph: a DAG of named ops.

Graphs are built producer-first (an op's inputs must already exist), so
insertion order is a valid topological order — the scheduler and the
SPMD pass both rely on that invariant, and :meth:`ComputationGraph.add`
enforces it.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConfigurationError
from repro.graph.ops import CollectiveOp, InputOp, MatMulOp, Op, ParameterOp


class ComputationGraph:
    """A DAG of :class:`~repro.graph.ops.Op` nodes keyed by name."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._ops: dict[str, Op] = {}
        self._consumers: dict[str, list[str]] = {}

    # -- construction ------------------------------------------------------------

    def add(self, op: Op) -> str:
        """Insert `op`; inputs must already be present.  Returns its name."""
        if op.name in self._ops:
            raise ConfigurationError(
                f"duplicate op name {op.name!r} in graph {self.name!r}")
        for producer in op.inputs:
            if producer not in self._ops:
                raise ConfigurationError(
                    f"op {op.name!r} consumes unknown producer {producer!r}")
        self._ops[op.name] = op
        self._consumers[op.name] = []
        for producer in op.inputs:
            self._consumers[producer].append(op.name)
        return op.name

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __iter__(self) -> Iterator[Op]:
        return iter(self._ops.values())

    def op(self, name: str) -> Op:
        """Look up one op; raises for unknown names."""
        if name not in self._ops:
            raise ConfigurationError(
                f"graph {self.name!r} has no op {name!r}")
        return self._ops[name]

    def ops(self) -> list[Op]:
        """All ops in insertion (= topological) order."""
        return list(self._ops.values())

    def consumers(self, name: str) -> list[str]:
        """Ops that read `name`'s output."""
        self.op(name)
        return list(self._consumers[name])

    def sinks(self) -> list[str]:
        """Ops nothing consumes (losses, optimizer updates)."""
        return [name for name, users in self._consumers.items() if not users]

    # -- aggregates ------------------------------------------------------------------

    def total_flops(self) -> float:
        """Sum of global FLOPs over all ops."""
        # detlint: ignore[D005] _ops preserves deterministic build order
        return sum(op.flops() for op in self._ops.values())

    def matmul_flops(self) -> float:
        """FLOPs in dense matmuls only (the MXU share)."""
        # detlint: ignore[D005] _ops preserves deterministic build order
        return sum(op.flops() for op in self._ops.values()
                   if isinstance(op, MatMulOp))

    def parameter_bytes(self) -> float:
        """Total weight bytes (global, before sharding)."""
        # detlint: ignore[D005] _ops preserves deterministic build order
        return sum(op.output.num_bytes for op in self._ops.values()
                   if isinstance(op, ParameterOp))

    def counts_by_kind(self) -> dict[str, int]:
        """Op count per kind, for structural assertions and reports."""
        counts: dict[str, int] = {}
        for op in self._ops.values():
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def collectives(self) -> list[CollectiveOp]:
        """All communication ops in topological order."""
        return [op for op in self._ops.values()
                if isinstance(op, CollectiveOp)]

    def inputs(self) -> list[str]:
        """Names of per-step input ops."""
        return [op.name for op in self._ops.values()
                if isinstance(op, InputOp)]

    def validate(self) -> None:
        """Re-check structural invariants (acyclicity by construction)."""
        seen: set[str] = set()
        for name, op in self._ops.items():
            for producer in op.inputs:
                if producer not in seen:
                    raise ConfigurationError(
                        f"op {name!r} precedes its producer {producer!r}")
            seen.add(name)

    def describe(self) -> str:
        """One-line structural summary."""
        kinds = ", ".join(f"{k}={v}"
                          for k, v in sorted(self.counts_by_kind().items()))
        return (f"graph {self.name!r}: {len(self)} ops "
                f"({kinds}); {self.total_flops():.3e} FLOPs")

    def __repr__(self) -> str:
        return f"<ComputationGraph {self.name!r} ops={len(self)}>"

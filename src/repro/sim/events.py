"""A minimal discrete-event simulation kernel.

Events are (time, sequence, callback) triples kept in a binary heap.  The
sequence number makes the ordering of same-time events deterministic
(insertion order), which keeps every simulation in the library reproducible.

The heap stores bare ``(time, seq, event)`` tuples rather than the event
objects themselves: sift comparisons then run entirely on C-level tuple
ordering (seq is unique, so the event object is never compared), which is
what makes the cancel-heavy fleet workload cheap at hyperscale event
counts.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Attributes:
        time: simulation time at which the event fires.
        seq: tie-breaker preserving insertion order for equal times.
        action: zero-argument callable run when the event fires.
        cancelled: cancelled events stay in the heap (lazy deletion) until
            the owning queue compacts them away.
    """

    __slots__ = ("time", "seq", "action", "cancelled", "_queue")

    def __init__(self, time: float, seq: int, action: Callable[[], None],
                 queue: Optional["EventQueue"] = None) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False
        self._queue = queue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"Event(time={self.time!r}, seq={self.seq}, {state})"

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Cancellation is lazy: a cancelled event stays heap-resident and is
    skipped on pop.  Long-running simulations that cancel most of what
    they schedule (fleet runs rescheduling completions after every
    failure) would grow the heap without bound, so the queue counts
    cancellations and compacts the heap once dead events dominate.
    """

    #: Never compact below this many dead events; avoids churn on tiny heaps.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        # Heap entries are (time, seq, event); seq is unique, so tuple
        # comparison never reaches the event object.
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule `action` at absolute time `time` and return the event."""
        seq = next(self._counter)
        event = Event(time, seq, action, queue=self)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            # Detach so a later cancel() of the (no longer heap-resident)
            # event cannot skew the dead-event counter.
            event._queue = None
            if not event.cancelled:
                return event
            self._cancelled -= 1
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2]._queue = None
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if self._cancelled >= self.COMPACT_MIN_CANCELLED and \
                self._cancelled * 2 >= len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled event and re-heapify the survivors."""
        self._heap = [entry for entry in self._heap
                      if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0


class TypedEvent:
    """One entry of a :class:`TypedEventQueue`: data, not a callback.

    The fast engine tier dispatches events by integer `kind` instead of
    calling a per-event Python closure, so an event is just a typed row:
    ``(time, kind, a, b)`` where `a`/`b` are small integer operands (a
    job index; a pod and block id).  Cancellation mirrors
    :class:`Event`: lazy, with the owning queue compacting dead rows.
    """

    __slots__ = ("time", "seq", "kind", "a", "b", "cancelled", "_queue")

    def __init__(self, time: float, seq: int, kind: int, a: int, b: int,
                 queue: Optional["TypedEventQueue"] = None) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.a = a
        self.b = b
        self.cancelled = False
        self._queue = queue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return (f"TypedEvent(time={self.time!r}, kind={self.kind}, "
                f"a={self.a}, b={self.b}, {state})")

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()


class TypedEventQueue:
    """A deterministic priority queue of :class:`TypedEvent` rows.

    The fast-tier counterpart of :class:`EventQueue`: same tuple heap,
    same lazy cancellation and compaction, but (a) events carry typed
    integer operands instead of closures, and (b) :meth:`pop_batch`
    drains *every* live event sharing the earliest timestamp in one
    call — the batching the strict tier's per-event callback contract
    forbids.  Within a batch, events come out in insertion (seq) order;
    callers regroup them by kind for batched application.
    """

    COMPACT_MIN_CANCELLED = EventQueue.COMPACT_MIN_CANCELLED

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, TypedEvent]] = []
        self._counter = itertools.count()
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def push(self, time: float, kind: int, a: int = 0,
             b: int = 0) -> TypedEvent:
        """Schedule a `(kind, a, b)` row at absolute time `time`."""
        seq = next(self._counter)
        event = TypedEvent(time, seq, kind, a, b, queue=self)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest live event, if any."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2]._queue = None
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def pop_batch(self) -> Optional[tuple[float, list[TypedEvent]]]:
        """Remove every live event at the earliest time, in seq order.

        Returns ``(time, events)`` or None when the queue is empty.
        """
        heap = self._heap
        batch: list[TypedEvent] = []
        time = None
        while heap:
            if time is not None and heap[0][0] != time:
                break
            event = heapq.heappop(heap)[2]
            event._queue = None
            if event.cancelled:
                self._cancelled -= 1
                continue
            if time is None:
                time = event.time
            batch.append(event)
        if time is None:
            return None
        return time, batch

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if self._cancelled >= self.COMPACT_MIN_CANCELLED and \
                self._cancelled * 2 >= len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled event and re-heapify the survivors."""
        self._heap = [entry for entry in self._heap
                      if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0


class Simulator:
    """Runs an :class:`EventQueue` while advancing a monotonic clock."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self._events_fired = 0

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule `action` to run `delay` seconds after the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        return self.queue.push(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule `action` at absolute simulation time `time`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}")
        return self.queue.push(time, action)

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError(
                f"event time {event.time} precedes clock {self.now}")
        self.now = event.time
        self._events_fired += 1
        event.action()
        return True

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Run until the queue drains, `until` is reached, or a budget hits.

        Args:
            until: stop (and advance the clock to this time) once the next
                event would fire later than `until`.
            max_events: safety valve against runaway simulations.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"exceeded event budget of {max_events} events")
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            self.step()
            fired += 1


Action = Callable[[], None]
AnyEvent = Any

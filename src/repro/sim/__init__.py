"""Discrete-event simulation substrate.

A deliberately small kernel: an event queue with a monotonic clock
(:mod:`repro.sim.events`) and seeded random-number helpers
(:mod:`repro.sim.rng`).  The flow-level network simulator in
:mod:`repro.network.flowsim` and the availability Monte Carlo in
:mod:`repro.core.availability` are built on top of it.
"""

from repro.sim.events import Event, EventQueue, Simulator
from repro.sim.rng import make_rng, spawn_rngs

__all__ = ["Event", "EventQueue", "Simulator", "make_rng", "spawn_rngs"]

"""Seeded random-number helpers.

All stochastic code in the library receives a :class:`numpy.random.Generator`
built here, so every experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a Generator from a seed, passing through existing generators.

    >>> bool(make_rng(7).integers(0, 10) == make_rng(7).integers(0, 10))
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive `count` independent child generators from one seed.

    Used when Monte Carlo trials run over independent streams so adding
    trials never perturbs earlier ones.
    """
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]

"""Registry mapping experiment ids to runner functions."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult
from repro.experiments import exp_fleet, exp_graph, exp_mlperf, \
    exp_network, exp_ocs, exp_perf, exp_sparse, exp_tables

Runner = Callable[[], ExperimentResult]

EXPERIMENTS: dict[str, Runner] = {
    "table1": exp_tables.run_table1,
    "table2": exp_tables.run_table2,
    "table3": exp_perf.run_table3,
    "table4": exp_tables.run_table4,
    "table5": exp_tables.run_table5,
    "table6": exp_tables.run_table6,
    "figure1": exp_ocs.run_figure1,
    "figure4": exp_ocs.run_figure4,
    "figure5": exp_ocs.run_figure5,
    "figure6": exp_network.run_figure6,
    "figure8": exp_sparse.run_figure8,
    "figure9": exp_sparse.run_figure9,
    "figure10": exp_sparse.run_figure10,
    "figure11": exp_perf.run_figure11,
    "figure12": exp_perf.run_figure12,
    "figure13": exp_perf.run_figure13,
    "figure14": exp_mlperf.run_figure14,
    "figure15": exp_mlperf.run_figure15,
    "figure16": exp_perf.run_figure16,
    "figure17": exp_sparse.run_figure17,
    "section29": exp_ocs.run_section29,
    "section210": exp_ocs.run_section210,
    "section73": exp_network.run_section73,
    "section76": exp_mlperf.run_section76,
    "section79": exp_graph.run_section79,
    "section710": exp_graph.run_section710,
    "fleet": exp_fleet.run_fleet_experiment,
    "fleet_strategies": exp_fleet.run_fleet_strategies,
    "fleet_crosspod": exp_fleet.run_fleet_crosspod,
    "fleet_contention": exp_fleet.run_fleet_contention,
    "fleet_replay": exp_fleet.run_fleet_replay,
    "fleet_deploy": exp_fleet.run_fleet_deploy,
}


def list_experiments() -> list[str]:
    """Registered experiment ids, sorted for stable display."""
    return sorted(EXPERIMENTS)


def run(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    if experiment_id not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"have {list_experiments()}")
    return EXPERIMENTS[experiment_id]()

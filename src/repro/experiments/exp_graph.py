"""Experiments backed by the graph-level simulator and the SC ISA model.

* ``section79`` — is MLPerf's DLRM benchmark realistic?  (weak-scaling
  comparison against a production-shaped DLRM)
* ``section710`` — LLM partitioning with compute-communication overlap
  (the Section 7.10 claim, using the Wang et al. [59] decomposition).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.graph.builders import transformer_step_graph
from repro.graph.memory import estimate_memory
from repro.graph.mesh import DeviceMesh, MeshAxis
from repro.graph.overlap import overlap_speedup
from repro.graph.schedule import simulate
from repro.graph.spmd import partition
from repro.models.mlperf_dlrm import (MLPERF_DLRM, PRODUCTION_DLRM,
                                      scaling_curve, useful_scaling_limit)
from repro.models.transformer import LLM_CONFIG

SECTION79_SIZES = [16, 32, 64, 128, 256, 512, 1024]


def run_section79() -> ExperimentResult:
    """Section 7.9: MLPerf DLRM vs production DLRM weak scaling."""
    result = ExperimentResult(
        experiment_id="section79",
        title="Is MLPerf's DLRM benchmark realistic?",
        columns=["chips", "bench", "per-SC batch", "step (ms)",
                 "Mexamples/s", "fixed overhead %"],
    )
    limits = {}
    for bench in (MLPERF_DLRM, PRODUCTION_DLRM):
        curve = scaling_curve(bench, SECTION79_SIZES)
        limits[bench.name] = useful_scaling_limit(curve)
        for point in curve:
            result.rows.append([
                point.num_chips, bench.name,
                round(point.per_sc_batch, 1),
                round(point.step_seconds * 1e3, 3),
                round(point.examples_per_second / 1e6, 2),
                round(100 * point.overhead_fraction, 1)])

    mlperf_curve = scaling_curve(MLPERF_DLRM, SECTION79_SIZES)
    at_128 = next(p for p in mlperf_curve if p.num_chips == 128)
    result.paper["per-SC batch at 128 chips (64k cap)"] = 128
    result.measured["per-SC batch at 128 chips (64k cap)"] = round(
        at_128.per_sc_batch)
    result.paper["MLPerf DLRM useful scaling limit"] = "<= 128 chips"
    result.measured["MLPerf DLRM useful scaling limit"] = (
        f"{limits[MLPERF_DLRM.name]} chips")
    result.paper["production DLRM useful scaling"] = "up to 1024 chips"
    result.measured["production DLRM useful scaling"] = (
        f"{limits[PRODUCTION_DLRM.name]} chips")
    result.notes.append(
        "fixed overheads (CISC sequencer + HBM latency) are the modelled "
        "reason: they reach ~1/3 of the MLPerf step at 1024 chips but "
        "stay <1% for the production shape")
    return result


def run_section710(num_layers: int = 8) -> ExperimentResult:
    """Section 7.10: overlap lets larger partitions stay efficient.

    Simulates one LLM training step on an 8x8x8 slice (Table 3's best
    LLM topology) at three scheduling levels: collectives blocking
    compute, free-running collectives, and the [59] decomposition.
    """
    mesh = DeviceMesh((8, 8, 8), [MeshAxis("data", 8, (0,)),
                                  MeshAxis("model1", 64, (1, 2))])
    graph, annotations = transformer_step_graph(
        LLM_CONFIG, global_batch=256, num_layers=num_layers)
    program = partition(graph, mesh, annotations)
    times = overlap_speedup(program, chunks=4)
    trace = simulate(program)

    result = ExperimentResult(
        experiment_id="section710",
        title="Compute-communication overlap for LLM partitioning",
        columns=["schedule", "step (ms)", "speedup vs serial"],
    )
    for label in ("serial", "overlap", "decomposed"):
        result.rows.append([label, round(times[label] * 1e3, 3),
                            round(times["serial"] / times[label], 3)])
    result.paper["overlap helps larger partitions"] = \
        "effective compute-communication overlap [59]"
    result.measured["overlap helps larger partitions"] = (
        f"{times['serial'] / times['decomposed']:.2f}x step-time gain")
    result.measured["exposed comm (overlap schedule)"] = (
        f"{simulate(program).exposed_comm_seconds() * 1e3:.2f} ms")
    result.measured["tensorcore utilization"] = (
        f"{trace.utilization('tensorcore'):.1%}")
    memory = estimate_memory(program)
    result.paper["HBM capacity a limiting factor?"] = (
        "could be in some cases; typically larger models partition "
        "across more chips")
    result.measured["HBM capacity a limiting factor?"] = (
        f"this config: {memory.summary()} "
        f"({memory.utilization():.0%} of 32 GiB)")
    result.notes.append(
        f"{num_layers}-layer slice of the Table 3 LLM on 8x8x8, "
        "Megatron 1D sharding over a 64-chip model axis")
    return result

"""Experiments for the interconnect results: Figure 6, Section 7.3."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.network.analytic import alltoall_analysis
from repro.network.fattree import superpod_anchor_check
from repro.network.hybrid import ib_vs_ocs_slowdowns
from repro.topology import Torus3D, TwistedTorus3D
from repro.units import GB

ICI_LINK_BW = 50 * GB


def run_figure6() -> ExperimentResult:
    """Figure 6: all-to-all throughput, regular vs twisted tori."""
    result = ExperimentResult(
        experiment_id="figure6",
        title="All-to-all throughput: regular vs twisted tori",
        columns=["slice", "topology", "per-chip a2a (GB/s)",
                 "ideal peak (GB/s)", "efficiency"],
    )
    ratios: dict[tuple[int, int, int], float] = {}
    for shape in ((4, 4, 8), (4, 8, 8)):
        regular = alltoall_analysis(Torus3D(shape), ICI_LINK_BW)
        twisted = alltoall_analysis(TwistedTorus3D(shape), ICI_LINK_BW)
        for name, analysis in (("regular", regular), ("twisted", twisted)):
            result.rows.append([
                "x".join(map(str, shape)), name,
                round(analysis.per_node_throughput / 1e9, 1),
                round(analysis.ideal_peak / 1e9, 1),
                round(analysis.efficiency_vs_ideal, 3),
            ])
        ratios[shape] = (twisted.per_node_throughput
                         / regular.per_node_throughput)
    result.paper["twisted/regular throughput, 4x4x8"] = 1.63
    result.measured["twisted/regular throughput, 4x4x8"] = round(
        ratios[(4, 4, 8)], 2)
    result.paper["twisted/regular throughput, 4x8x8"] = 1.31
    result.measured["twisted/regular throughput, 4x8x8"] = round(
        ratios[(4, 8, 8)], 2)
    result.notes.append(
        "measured = ECMP/edge-betweenness steady state; the stacked 'delta "
        "from ideal' bar maps to 1 - efficiency column")
    return result


def run_section73() -> ExperimentResult:
    """Section 7.3: Infiniband fat tree vs OCS torus."""
    slowdowns = ib_vs_ocs_slowdowns()
    result = ExperimentResult(
        experiment_id="section73",
        title="Hybrid ICI/IB network vs OCS torus",
        columns=["slice chips", "all-reduce slowdown", "all-to-all slowdown"],
    )
    for size, numbers in sorted(slowdowns.items()):
        result.rows.append([size, round(numbers["allreduce"], 2),
                            round(numbers["alltoall"], 2)])
    ar_values = [n["allreduce"] for n in slowdowns.values()]
    a2a_values = [n["alltoall"] for n in slowdowns.values()]
    result.paper["all-reduce slowdown range"] = "1.8x-2.4x"
    result.measured["all-reduce slowdown range"] = (
        f"{min(ar_values):.2f}x-{max(ar_values):.2f}x")
    result.paper["all-to-all slowdown range"] = "1.2x-2.4x"
    result.measured["all-to-all slowdown range"] = (
        f"{min(a2a_values):.2f}x-{max(a2a_values):.2f}x")

    anchors = superpod_anchor_check()
    result.paper["IB switches per 1120-GPU superpod"] = 164
    result.measured["IB switches per 1120-GPU superpod"] = anchors["a100_1120"]
    result.paper["IB switches for 4096 TPUs"] = 568
    result.measured["IB switches for 4096 TPUs"] = anchors["tpuv4_4096"]
    result.notes.append(
        "the paper also notes overall DNN slowdown may be only ~10% since "
        "communication is a fraction of step time — but the availability/"
        "deployability benefits of the OCS are lost")
    return result

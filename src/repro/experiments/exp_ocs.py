"""Experiments for the OCS sections: Figures 1, 4, 5; Sections 2.9, 2.10."""

from __future__ import annotations

from repro.core.availability import (analytic_ocs_goodput, simulate_goodput)
from repro.experiments.base import ExperimentResult
from repro.models.workload import topology_distribution_stats
from repro.ocs import OCSFabric, optics_bill, realize_slice
from repro.topology.twisted import figure5_example


def run_figure1() -> ExperimentResult:
    """Figure 1: the 4^3-block-to-48-OCS wiring law, verified by building."""
    fabric = OCSFabric()
    wiring = realize_slice(fabric, (16, 16, 16))
    result = ExperimentResult(
        experiment_id="figure1",
        title="Connectivity of 4x4x4 blocks to the OCS fabric",
        columns=["quantity", "value"],
    )
    budget = fabric.optical_link_budget()
    result.rows = [
        ["switches", budget["switches"]],
        ["fibers (block face links)", budget["fibers"]],
        ["circuits for the full 4096-chip machine", fabric.total_circuits()],
        ["electrical (in-rack) links", wiring.num_electrical_links],
        ["optical (OCS) links", wiring.num_optical_links],
    ]
    result.paper["OCS count"] = 48
    result.measured["OCS count"] = budget["switches"]
    result.paper["links per block"] = 96
    result.measured["links per block"] = budget["fibers"] // 64
    result.paper["ports per OCS needed"] = 128
    result.measured["ports per OCS needed"] = fabric.ports_per_switch_needed()
    result.paper["total chips"] = 4096
    result.measured["total chips"] = wiring.topology.num_nodes
    return result


def run_figure4(trials: int = 60, seed: int = 0) -> ExperimentResult:
    """Figure 4: goodput vs slice size and availability, OCS vs static."""
    result = ExperimentResult(
        experiment_id="figure4",
        title="Goodput: OCS vs statically-connected, by host availability",
        columns=["slice chips", "availability", "OCS goodput",
                 "static goodput", "analytic OCS"],
    )
    for availability in (0.99, 0.995, 0.999):
        for chips in (64, 256, 1024, 2048, 3072):
            ocs = simulate_goodput(chips, availability, use_ocs=True,
                                   trials=trials, seed=seed)
            static = simulate_goodput(chips, availability, use_ocs=False,
                                      trials=trials, seed=seed)
            result.rows.append([
                chips, availability,
                round(ocs.mean_goodput, 3), round(static.mean_goodput, 3),
                round(analytic_ocs_goodput(chips, availability), 3),
            ])
    quarter = simulate_goodput(1024, 0.99, use_ocs=True, trials=trials,
                               seed=seed)
    half = simulate_goodput(2048, 0.99, use_ocs=True, trials=trials,
                            seed=seed)
    three_quarter = simulate_goodput(3072, 0.99, use_ocs=True, trials=trials,
                                     seed=seed)
    result.paper["goodput @1K chips, 99.0-99.5%"] = 0.75
    result.measured["goodput @1K chips, 99.0-99.5%"] = round(
        quarter.mean_goodput, 3)
    result.paper["goodput @2K chips"] = 0.50
    result.measured["goodput @2K chips"] = round(half.mean_goodput, 3)
    result.paper["goodput @3K chips"] = 0.75
    result.measured["goodput @3K chips"] = round(
        three_quarter.mean_goodput, 3)
    result.notes.append(
        "static machines need ~99.9% host availability for usable goodput "
        "at large slices — the original motivation for the OCS")
    return result


def run_figure5() -> ExperimentResult:
    """Figure 5: regular vs twisted wiring of a 4x2 slice."""
    example = figure5_example()
    result = ExperimentResult(
        experiment_id="figure5",
        title="Regular vs twisted torus wiring (4x2 example)",
        columns=["link set", "links"],
    )
    for name, links in example.items():
        rendering = ", ".join(f"{u[:2]}-{v[:2]}" for u, v in links)
        result.rows.append([name, rendering])
    result.paper["electrical links unchanged by twisting"] = "yes"
    result.measured["electrical links unchanged by twisting"] = "yes"
    result.paper["optical links rerouted"] = 6
    result.measured["optical links rerouted"] = sum(
        1 for a, b in zip(example["regular_optical"],
                          example["twisted_optical"]) if a != b)
    return result


def run_section29() -> ExperimentResult:
    """Section 2.9: distribution of topologies."""
    stats = topology_distribution_stats()
    result = ExperimentResult(
        experiment_id="section29",
        title="Distribution of slice topologies",
        columns=["statistic", "share"],
        rows=[[key, round(value, 3)] for key, value in stats.items()],
    )
    result.paper["sub-block (mesh-only) slices"] = 0.29
    result.measured["sub-block (mesh-only) slices"] = round(
        stats["sub_block"], 3)
    result.paper["twistable slices"] = 0.33
    result.measured["twistable slices"] = round(stats["twistable"], 3)
    result.paper["twisted slices"] = 0.28
    result.measured["twisted slices"] = round(stats["twisted"], 3)
    result.paper["twisted among twistable"] = 0.86
    result.measured["twisted among twistable"] = round(
        stats["twisted_among_twistable"], 3)
    result.paper["twisted among >=1-block slices"] = 0.40
    result.measured["twisted among >=1-block slices"] = round(
        stats["twisted_among_block_sized"], 3)
    return result


def run_section210() -> ExperimentResult:
    """Section 2.10: optics cost and power fractions."""
    bill = optics_bill(OCSFabric())
    result = ExperimentResult(
        experiment_id="section210",
        title="Cost of OCS flexibility",
        columns=["quantity", "value"],
        rows=[
            ["switches", bill.switches],
            ["transceivers", bill.transceivers],
            ["optics capital ($M)", round(bill.optics_cost / 1e6, 2)],
            ["system capital ($M)", round(bill.system_cost / 1e6, 1)],
            ["optics power (kW)", round(bill.optics_power / 1e3, 1)],
            ["system power (kW)", round(bill.system_power / 1e3, 1)],
        ],
    )
    result.paper["optics cost fraction"] = "<5%"
    result.measured["optics cost fraction"] = f"{bill.cost_fraction:.1%}"
    result.paper["optics power fraction"] = "<3%"
    result.measured["optics power fraction"] = f"{bill.power_fraction:.1%}"
    result.notes.append(
        "unit prices are public-ballpark estimates (see repro.ocs."
        "optics_cost); the reproduced claim is the <5%/<3% ceiling")
    return result

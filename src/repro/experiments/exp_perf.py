"""Experiments for production performance: Table 3, Figures 11, 12, 13, 16."""

from __future__ import annotations

from repro.chips.roofline import place_models, ridge_point, roofline_curve
from repro.chips.specs import A100, TPUV3, TPUV4
from repro.experiments.base import ExperimentResult
from repro.models.perfmodel import (geomean_speedup, perf_per_watt_ratio,
                                    speedup_v4_over_v3)
from repro.models.profiles import PRODUCTION_APPS
from repro.models.scaling import (apps_scaling_well,
                                  production_scaling_curves)
from repro.parallelism.costmodel import llm_step_cost
from repro.parallelism.search import (TABLE3_GPT3, TABLE3_LLM,
                                      search_best_configuration)


def run_table3() -> ExperimentResult:
    """Table 3: topology + partitioning search for the LLM and GPT-3."""
    result = ExperimentResult(
        experiment_id="table3",
        title="Topology/partitioning improvements for a 512-chip slice",
        columns=["case", "version", "topology", "spec",
                 "throughput (seqs/s)", "MFU"],
    )
    for case in (TABLE3_LLM, TABLE3_GPT3):
        baseline = llm_step_cost(case.model, case.baseline_shape,
                                 case.baseline_spec, case.global_batch)
        search = search_best_configuration(case)
        best = search.best
        shape_txt = "x".join(map(str, case.baseline_shape))
        result.rows.append([case.name, "baseline pick", shape_txt,
                            case.baseline_spec.label,
                            round(baseline.throughput_seqs, 1),
                            round(baseline.model_flops_utilization, 2)])
        result.rows.append([case.name, "search best",
                            "x".join(map(str, best.shape)), best.spec.label,
                            round(best.throughput_seqs, 1),
                            round(best.model_flops_utilization, 2)])
        result.paper[f"{case.name} baseline (seqs/s)"] = \
            case.paper_baseline_throughput
        result.measured[f"{case.name} baseline (seqs/s)"] = round(
            baseline.throughput_seqs, 1)
        result.paper[f"{case.name} best (seqs/s)"] = \
            case.paper_best_throughput
        result.measured[f"{case.name} best (seqs/s)"] = round(
            best.throughput_seqs, 1)
        result.paper[f"{case.name} gain"] = round(case.paper_gain, 2)
        result.measured[f"{case.name} gain"] = round(search.gain, 2)
    return result


def run_figure11() -> ExperimentResult:
    """Figure 11: weak-scaling of the eight production apps."""
    curves = production_scaling_curves()
    result = ExperimentResult(
        experiment_id="figure11",
        title="Scalability of TPU v4 production workloads (log-log)",
        columns=["app", "chips", "speedup", "efficiency"],
    )
    for app, curve in sorted(curves.items()):
        for chips, speedup, eff in zip(curve.chips, curve.speedup,
                                       curve.efficiency()):
            result.rows.append([app, chips, round(speedup, 1),
                                round(eff, 2)])
    good = apps_scaling_well(threshold=0.75, at_chips=3072)
    result.paper["apps scaling well to 3K"] = "CNN0, RNN0, RNN1, BERT1"
    result.measured["apps scaling well to 3K"] = ", ".join(sorted(good))
    result.paper["BERT0 limit"] = 2048
    result.measured["BERT0 limit"] = curves["BERT0"].chips[-1]
    result.paper["DLRM0/1 limit"] = 1024
    result.measured["DLRM0/1 limit"] = curves["DLRM0"].chips[-1]

    from repro.reporting.figures import AsciiChart, Series
    chart = AsciiChart("Figure 11 (log-log): speedup vs chips",
                       x_label="chips", y_label="speedup",
                       log_x=True, log_y=True)
    for app in ("CNN0", "DLRM0"):
        curve = curves[app]
        chart.add(Series(app, curve.chips, curve.speedup))
    result.charts.append(chart)
    return result


def run_figure12() -> ExperimentResult:
    """Figure 12: TPU v4 vs v3 speedup per production app."""
    result = ExperimentResult(
        experiment_id="figure12",
        title="Speedup of TPU v4 vs TPU v3 at equal slice sizes",
        columns=["app", "paper speedup", "measured speedup"],
    )
    for app in sorted(PRODUCTION_APPS):
        target = PRODUCTION_APPS[app].paper_speedup_v4_over_v3
        measured = speedup_v4_over_v3(app)
        result.rows.append([app, target, round(measured, 2)])
        result.paper[app] = target
        result.measured[app] = round(measured, 2)
    return result


def run_figure13() -> ExperimentResult:
    """Figure 13: CMEM ablation, overall speedup, and perf/Watt."""
    result = ExperimentResult(
        experiment_id="figure13",
        title="CMEM on/off, performance and performance/Watt vs TPU v3",
        columns=["app", "v4/v3 (CMEM on)", "v4/v3 (CMEM off)",
                 "CMEM contribution"],
    )
    for app in sorted(PRODUCTION_APPS):
        with_cmem = speedup_v4_over_v3(app)
        without = speedup_v4_over_v3(app, cmem=False)
        result.rows.append([app, round(with_cmem, 2), round(without, 2),
                            round(with_cmem / without, 2)])
    result.paper["overall v4/v3 performance"] = 2.1
    result.measured["overall v4/v3 performance"] = round(geomean_speedup(), 2)
    result.paper["overall v4/v3 perf/Watt"] = 2.7
    result.measured["overall v4/v3 perf/Watt"] = round(
        perf_per_watt_ratio(), 2)
    result.paper["CMEM contribution overall"] = 1.2
    result.measured["CMEM contribution overall"] = round(
        geomean_speedup() / geomean_speedup(cmem=False), 2)
    result.paper["CMEM contribution RNN1"] = 2.0
    result.measured["CMEM contribution RNN1"] = round(
        speedup_v4_over_v3("RNN1") / speedup_v4_over_v3("RNN1", cmem=False),
        2)
    return result


def run_figure16() -> ExperimentResult:
    """Figure 16: rooflines for TPU v3/v4 and A100 with model markers."""
    result = ExperimentResult(
        experiment_id="figure16",
        title="Roofline models (operational intensity in FLOP/byte)",
        columns=["chip", "model", "OI", "attainable (TFLOPS)",
                 "memory bound"],
    )
    for spec in (TPUV3, TPUV4, A100):
        for point in place_models(spec):
            result.rows.append([
                spec.name, point.model, point.operational_intensity,
                round(point.attainable / 1e12, 1),
                "yes" if point.memory_bound else "no",
            ])
    result.paper["TPU v4 ridge point (FLOP/B)"] = round(275e12 / 1200e9)
    result.measured["TPU v4 ridge point (FLOP/B)"] = round(ridge_point(TPUV4))
    result.paper["A100 ridge point lower than v4"] = "yes"
    result.measured["A100 ridge point lower than v4"] = (
        "yes" if ridge_point(A100) < ridge_point(TPUV4) else "no")
    ois, roofs = roofline_curve(TPUV4)
    result.measured["curve points computed"] = len(ois)
    return result

"""Common result container for paper-reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.reporting.figures import AsciiChart
from repro.reporting.tables import Table


@dataclass
class ExperimentResult:
    """Structured output of one table/figure reproduction.

    Attributes:
        experiment_id: registry key ('figure6', 'table3', ...).
        title: what the paper calls the artifact.
        columns: column names for the row listing.
        rows: the regenerated table/series rows.
        paper: the paper's published claims, keyed by claim name.
        measured: our corresponding measured values (same keys where a
            direct comparison exists).
        notes: modelling caveats worth surfacing next to the numbers.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    paper: dict[str, float | str] = field(default_factory=dict)
    measured: dict[str, float | str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    charts: list[AsciiChart] = field(default_factory=list)

    def comparison_rows(self) -> list[tuple[str, Any, Any]]:
        """(claim, paper value, measured value) for overlapping keys."""
        out = []
        for key, value in self.paper.items():
            out.append((key, value, self.measured.get(key, "-")))
        for key, value in self.measured.items():
            if key not in self.paper:
                out.append((key, "-", value))
        return out

    def render(self) -> str:
        """Printable report: data rows then the paper-vs-measured block."""
        blocks = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            data = Table(self.columns)
            for row in self.rows:
                data.add_row(row)
            blocks.append(data.render())
        for chart in self.charts:
            blocks.append(chart.render_plot())
        if self.paper or self.measured:
            comparison = Table(["claim", "paper", "measured"],
                               title="paper vs measured")
            for claim, paper_value, measured_value in self.comparison_rows():
                comparison.add_row([claim, paper_value, measured_value])
            blocks.append(comparison.render())
        for note in self.notes:
            blocks.append(f"note: {note}")
        return "\n\n".join(blocks)

    def __str__(self) -> str:
        return self.render()

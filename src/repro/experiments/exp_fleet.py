"""Fleet-level experiment: OCS vs static placement over one failure trace.

The fleet-scale composition of the paper's operational claims: slices
"picked from anywhere in the supercomputer" (Section 2.5) keep goodput
high under host failures (Figure 4), measured here end to end — a
Table 2 job stream with serving residencies, queueing, preemption, and
checkpoint-restart replayed under both placement policies on an
identical block-outage trace.
"""

from __future__ import annotations

import json


from repro.core.scheduler import PlacementPolicy, PlacementStrategy
from repro.experiments.base import ExperimentResult
from repro.fleet.presets import preset_config
from repro.fleet.scenario import compare_deployment, schedule_for
from repro.fleet.simulator import (FleetSimulator, compare_cross_pod,
                                   compare_policies, compare_preemption,
                                   compare_strategies)
from repro.fleet.trace import dumps_trace, loads_trace, trace_of
from repro.fleet.workload import hostile_background_mix
from repro.units import DAY, HOUR


def run_fleet_experiment(preset: str = "tiny",
                         seed: int = 0) -> ExperimentResult:
    """Run one preset under both policies and compare telemetry.

    (Named to avoid colliding with :func:`repro.fleet.run_fleet`, the
    single-policy library entry point.)
    """
    config = preset_config(preset)
    reports = compare_policies(config, seed=seed)
    result = ExperimentResult(
        experiment_id="fleet",
        title="Fleet simulation: goodput under failures, OCS vs static",
        columns=["metric", "OCS", "static"],
    )
    ocs, static = reports["ocs"].summary, reports["static"].summary
    for key, scale, unit in [
        ("jobs_submitted", 1.0, ""), ("jobs_completed", 1.0, ""),
        ("goodput", 1.0, ""), ("utilization", 1.0, ""),
        ("mean_queue_wait", 1 / HOUR, "h"),
        ("p95_queue_wait", 1 / HOUR, "h"),
        ("block_failures", 1.0, ""), ("job_interruptions", 1.0, ""),
        ("job_preemptions", 1.0, ""), ("replay_fraction", 1.0, ""),
        ("restore_fraction", 1.0, ""),
    ]:
        result.rows.append([
            key + (f" ({unit})" if unit else ""),
            round(ocs[key] * scale, 4), round(static[key] * scale, 4)])

    result.paper["OCS goodput beats static under same failures"] = "yes"
    result.measured["OCS goodput beats static under same failures"] = \
        "yes" if ocs["goodput"] > static["goodput"] else "NO"
    result.paper["slices picked from anywhere (Sec 2.5)"] = \
        "higher goodput"
    result.measured["slices picked from anywhere (Sec 2.5)"] = (
        f"{(ocs['goodput'] / static['goodput'] - 1):+.1%} goodput"
        if static["goodput"] > 0 else "static did no useful work")
    result.measured["OCS goodput"] = round(ocs["goodput"], 3)
    result.measured["static goodput"] = round(static["goodput"], 3)
    result.notes.append(
        f"preset {preset!r}, seed {seed}: {config.num_pods} pods x "
        f"{config.blocks_per_pod} blocks, "
        f"{config.horizon_seconds / HOUR:.0f}h horizon, identical job "
        f"stream and outage trace for both policies")
    result.notes.append(
        "absolute goodput depends on offered load; the reproduced claim "
        "is the OCS-over-static gap of Figure 4, not its y-axis")
    return result


def run_fleet_strategies(preset: str = "small",
                         seed: int = 0) -> ExperimentResult:
    """Placement-strategy family under the OCS policy, identical inputs.

    Section 2.5 makes placement flexible; Section 2.2's switching
    latency makes it non-free.  This experiment replays one job stream
    and outage trace under first_fit, best_fit, and defrag so the
    fragmentation-vs-rewiring tradeoff is measured, not asserted.
    """
    config = preset_config(preset)
    reports = compare_strategies(config, seed=seed)
    result = ExperimentResult(
        experiment_id="fleet_strategies",
        title="Fleet placement strategies under OCS reconfiguration "
              "latency",
        columns=["metric", "first_fit", "best_fit", "defrag"],
    )
    summaries = [reports[name].summary
                 for name in ("first_fit", "best_fit", "defrag")]
    for key, scale, unit in [
        ("jobs_completed", 1.0, ""), ("goodput", 1.0, ""),
        ("utilization", 1.0, ""),
        ("mean_queue_wait", 1 / HOUR, "h"),
        ("p95_queue_wait", 1 / HOUR, "h"),
        ("job_migrations", 1.0, ""),
        ("ocs_reconfigurations", 1.0, ""),
        ("reconfig_fraction", 1.0, ""),
        ("block_failures", 1.0, ""),
    ]:
        result.rows.append(
            [key + (f" ({unit})" if unit else "")] +
            [round(summary[key] * scale, 4) for summary in summaries])

    first_fit, best_fit, defrag = summaries
    result.paper["placement is flexible but not free (Secs 2.2, 2.5)"] = \
        "reconfiguration latency > 0"
    result.measured["placement is flexible but not free (Secs 2.2, 2.5)"] = (
        "yes" if all(s["reconfig_fraction"] > 0 for s in summaries)
        else "NO")
    result.paper["identical failure trace across strategies"] = "yes"
    result.measured["identical failure trace across strategies"] = (
        "yes" if len({s["block_failures"] for s in summaries}) == 1
        else "NO")
    result.measured["first_fit mean wait (h)"] = round(
        first_fit["mean_queue_wait"] / HOUR, 3)
    result.measured["best_fit mean wait (h)"] = round(
        best_fit["mean_queue_wait"] / HOUR, 3)
    result.measured["defrag mean wait (h)"] = round(
        defrag["mean_queue_wait"] / HOUR, 3)
    result.measured["defrag migrations"] = round(
        defrag["job_migrations"])
    result.notes.append(
        f"preset {preset!r}, seed {seed}: one OCS fleet, "
        f"{config.num_pods} pods x {config.blocks_per_pod} blocks, "
        f"reconfig {config.reconfig_base_seconds:.0f}s + "
        f"{config.ocs_switch_seconds * 1e3:.0f}ms/mirror-move, same job "
        f"stream and outage trace for every strategy")
    return result


def run_fleet_crosspod(preset: str = "large",
                       seed: int = 0) -> ExperimentResult:
    """Machine-wide placement A/B: cross-pod slices on vs off.

    The paper's machine is 64 racks stitched into arbitrary-size slices
    by a machine-level OCS layer (Sections 2-3): jobs bigger than one
    pod only exist because slices can span pods.  This experiment
    replays one `large`-preset job stream — whose Table 2 mix includes
    48-block slices against 27-block pods — with cross-pod placement
    enabled and disabled, on identical inputs.  Disabled, those jobs
    can never place; enabled, they ride the trunk layer and pay its
    reconfiguration latency and bandwidth tax.
    """
    config = preset_config(preset)
    reports = compare_cross_pod(config, seed=seed)
    result = ExperimentResult(
        experiment_id="fleet_crosspod",
        title="Machine-wide placement: cross-pod slices over the trunk "
              "OCS layer",
        columns=["metric", "cross_pod", "single_pod"],
    )
    enabled = reports["cross_pod"].summary
    disabled = reports["single_pod"].summary
    for key, scale, unit in [
        ("jobs_submitted", 1.0, ""), ("jobs_completed", 1.0, ""),
        ("jobs_never_ran", 1.0, ""),
        ("goodput", 1.0, ""), ("utilization", 1.0, ""),
        ("cross_pod_fraction", 1.0, ""),
        ("job_cross_pod_placements", 1.0, ""),
        ("trunk_utilization", 1.0, ""),
        ("trunk_stall_fraction", 1.0, ""),
        ("median_queue_wait", 1 / HOUR, "h"),
        ("mean_queue_wait", 1 / HOUR, "h"),
        ("spare_port_repairs", 1.0, ""),
        ("block_failures", 1.0, ""),
    ]:
        result.rows.append([
            key + (f" ({unit})" if unit else ""),
            round(enabled[key] * scale, 4),
            round(disabled[key] * scale, 4)])

    result.paper["slices span pods over the machine OCS layer "
                 "(Secs 2-3)"] = "jobs > one pod run"
    result.measured["slices span pods over the machine OCS layer "
                    "(Secs 2-3)"] = (
        "yes" if enabled["cross_pod_fraction"] > 0 else "NO")
    result.paper["cross-pod placement beats draining outsized jobs"] = \
        "higher goodput"
    result.measured["cross-pod placement beats draining outsized jobs"] = (
        f"{enabled['goodput'] - disabled['goodput']:+.3f} goodput")
    result.measured["cross-pod goodput"] = round(enabled["goodput"], 3)
    result.measured["single-pod goodput"] = round(disabled["goodput"], 3)
    result.measured["spare-port repairs"] = round(
        enabled["spare_port_repairs"])
    result.notes.append(
        f"preset {preset!r}, seed {seed}: {config.num_pods} pods x "
        f"{config.blocks_per_pod} blocks, {config.trunk_ports} trunk "
        f"ports/pod, trunk tax {config.trunk_bandwidth_tax:.0%} x "
        f"cross-link share, identical job stream and outage trace for "
        f"both runs")
    result.notes.append(
        "with cross-pod disabled the machine-wide jobs never place — "
        "the modern-fleet version of draining a job around hardware it "
        "cannot reach")
    return result


def run_fleet_contention(preset: str = "large",
                         seed: int = 0) -> ExperimentResult:
    """Machine-wide contention A/B: cross-pod preemption on vs off.

    The paper's central operational claim is that OCS reconfigurability
    keeps large slices schedulable as the fleet fills and fragments
    around them — but a pod-local contention path silently degrades
    the cross-pod story to queueing.  This experiment replays one
    adversarial stream (every pod packed wall to wall with batch work
    that outlives the run, plus periodic production-priority arrivals
    at the largest machine-wide Table 2 shape) with machine-wide
    preemption enabled and disabled, on identical inputs: disabled,
    the outsized class starves outright; enabled, each arrival
    assembles a cross-pod placement out of evictions under the live
    trunk budget.
    """
    config = preset_config(preset).with_overrides(preempt_priority=1)
    reports = compare_preemption(config, seed=seed,
                                 strategy=PlacementStrategy.BEST_FIT,
                                 workload=hostile_background_mix)
    enabled = reports["preemption"]
    disabled = reports["queueing"]
    target = max(record.blocks for record in enabled.job_records)

    result = ExperimentResult(
        experiment_id="fleet_contention",
        title="Cross-pod preemption: machine-wide contention vs "
              "pod-local queueing",
        columns=["metric", "preemption", "queueing"],
    )
    for key, scale, unit in [
        ("jobs_submitted", 1.0, ""), ("jobs_completed", 1.0, ""),
        ("jobs_never_ran", 1.0, ""),
        ("goodput", 1.0, ""), ("utilization", 1.0, ""),
        ("cross_pod_preemptions", 1.0, ""),
        ("trunk_freeing_migrations", 1.0, ""),
        ("trunk_ports_reclaimed", 1.0, ""),
        ("job_preemptions", 1.0, ""),
        ("replay_fraction", 1.0, ""),
        ("median_queue_wait", 1 / HOUR, "h"),
    ]:
        result.rows.append([
            key + (f" ({unit})" if unit else ""),
            round(enabled.summary[key] * scale, 4),
            round(disabled.summary[key] * scale, 4)])
    result.rows.append([
        f"goodput of the {target}-block class",
        round(enabled.goodput_for_blocks(target), 4),
        round(disabled.goodput_for_blocks(target), 4)])

    result.paper["large slices stay schedulable under contention "
                 "(Secs 2.5, 3)"] = "cross-pod preemption places them"
    result.measured["large slices stay schedulable under contention "
                    "(Secs 2.5, 3)"] = (
        "yes" if enabled.summary["cross_pod_preemptions"] > 0 and
        enabled.goodput_for_blocks(target) >
        disabled.goodput_for_blocks(target) else "NO")
    result.paper["identical inputs across the A/B"] = "yes"
    result.measured["identical inputs across the A/B"] = (
        "yes" if enabled.summary["jobs_submitted"] ==
        disabled.summary["jobs_submitted"] and
        enabled.summary["block_failures"] ==
        disabled.summary["block_failures"] else "NO")
    result.measured[f"{target}-block goodput with preemption"] = round(
        enabled.goodput_for_blocks(target), 4)
    result.measured[f"{target}-block goodput queueing only"] = round(
        disabled.goodput_for_blocks(target), 4)
    result.measured["cross-pod preemption evictions"] = round(
        enabled.summary["cross_pod_preemptions"])
    result.notes.append(
        f"preset {preset!r} (preempt_priority lowered to 1), seed "
        f"{seed}: hostile deterministic mix — "
        f"{config.num_pods} pods x {config.blocks_per_pod} blocks "
        f"packed with batch work outliving the run, "
        f"{target}-block production arrivals every "
        f"{config.arrival_window_seconds / 8 / HOUR:.1f}h; identical "
        f"stream and outage trace for both runs")
    result.notes.append(
        "evictions are scheduler decisions, not inputs: the A/B flag "
        "never perturbs the dice, and record/replay byte-identity "
        "holds with the contention paths enabled")
    return result


def run_fleet_replay(preset: str = "replay",
                     seed: int = 0) -> ExperimentResult:
    """Trace record/replay round-trip: replayed telemetry is identical.

    The retrospective's evaluation discipline (Jouppi et al., "Google's
    Training Supercomputers from TPU v2 to Ironwood"): fleet resilience
    is measured against replayed production-shaped load, not fresh RNG
    draws.  This experiment records one run's inputs, round-trips them
    through the versioned JSONL schema as text, replays them, and
    checks the replayed run's telemetry JSON is byte-identical to the
    recorded run's — the property that makes traces a substrate for
    every future scenario study.
    """
    config = preset_config(preset)
    recorded = FleetSimulator(config, seed=seed)
    trace = trace_of(recorded)
    loaded = loads_trace(dumps_trace(trace))
    replayed = FleetSimulator.from_trace(loaded)

    first = recorded.run(PlacementPolicy.OCS)
    second = replayed.run(PlacementPolicy.OCS)
    first_json = json.dumps(first.summary, sort_keys=True)
    second_json = json.dumps(second.summary, sort_keys=True)

    result = ExperimentResult(
        experiment_id="fleet_replay",
        title="Workload trace record/replay: byte-identical telemetry",
        columns=["metric", "recorded", "replayed"],
    )
    for key in ("jobs_submitted", "jobs_completed", "goodput",
                "utilization", "block_failures", "mean_queue_wait"):
        result.rows.append([key, round(first.summary[key], 6),
                            round(second.summary[key], 6)])
    result.rows.append(["events_fired", first.events_fired,
                        second.events_fired])

    result.paper["replay reproduces recorded telemetry byte-for-byte"] = \
        "yes"
    result.measured["replay reproduces recorded telemetry "
                    "byte-for-byte"] = \
        "yes" if first_json == second_json else "NO"
    result.measured["trace records round-tripped"] = trace.num_records
    result.measured["jobs in trace"] = len(trace.jobs)
    result.measured["outages in trace"] = len(trace.outages)
    result.notes.append(
        f"preset {preset!r}, seed {seed}: inputs frozen by "
        f"repro.fleet.trace (schema version {loaded.version}), "
        f"serialized to JSONL text and parsed back before the replay "
        f"run — floats survive via shortest-repr round-tripping")
    return result


def run_fleet_deploy(preset: str = "deploy_week",
                     seed: int = 0) -> ExperimentResult:
    """Multi-day deployment scenario: OCS vs static around drains.

    Section 2.4's incremental-deployment claim composed with live
    traffic: two pods are pulled for upgrade mid-week and their blocks
    return one by one as hardware lands (delivery dates from
    `core/deployment.sample_delivery_days`).  Both policies lose the
    identical planned capacity; the OCS keeps scheduling around the
    holes while static wiring fragments — the fleet-scale version of
    "each 4x4x4 block enters production as soon as it is ready".
    """
    config = preset_config(preset)
    schedule = schedule_for(config.deploy_schedule or "deploy_week",
                            config)
    reports = compare_deployment(config, schedule=schedule, seed=seed)
    ocs, static = reports["ocs"].summary, reports["static"].summary

    result = ExperimentResult(
        experiment_id="fleet_deploy",
        title="Deployment scenario: rollout drains over live traffic",
        columns=["metric", "OCS", "static"],
    )
    for key, scale, unit in [
        ("jobs_submitted", 1.0, ""), ("jobs_completed", 1.0, ""),
        ("goodput", 1.0, ""), ("utilization", 1.0, ""),
        ("drain_fraction", 1.0, ""),
        ("mean_queue_wait", 1 / HOUR, "h"),
        ("p95_queue_wait", 1 / HOUR, "h"),
        ("job_interruptions", 1.0, ""),
        ("block_failures", 1.0, ""),
    ]:
        result.rows.append([
            key + (f" ({unit})" if unit else ""),
            round(ocs[key] * scale, 4), round(static[key] * scale, 4)])

    result.paper["OCS reconfigures around drains (Secs 2.4-2.5)"] = \
        "higher goodput under the same schedule"
    result.measured["OCS reconfigures around drains (Secs 2.4-2.5)"] = (
        f"{ocs['goodput'] - static['goodput']:+.3f} goodput"
        if ocs["goodput"] > static["goodput"] else "NO")
    result.paper["drain schedule identical across policies"] = "yes"
    result.measured["drain schedule identical across policies"] = (
        "yes" if ocs["drain_fraction"] == static["drain_fraction"]
        else "NO")
    result.measured["OCS goodput"] = round(ocs["goodput"], 3)
    result.measured["static goodput"] = round(static["goodput"], 3)
    result.measured["capacity drained"] = round(ocs["drain_fraction"], 4)
    result.notes.append(
        f"preset {preset!r}, seed {seed}, schedule "
        f"{schedule.name!r}: {len(schedule.windows)} drain windows over "
        f"{schedule.pods_touched} pods "
        f"({schedule.drain_block_seconds / DAY:.0f} block-days), "
        f"identical job stream, outage trace, and drains for both "
        f"policies")
    result.notes.append(
        "drained capacity is charged through the existing utilization "
        "identity: drained blocks simply host no work, so goodput and "
        "utilization drop by the capacity loss plus fragmentation")
    return result

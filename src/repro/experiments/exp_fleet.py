"""Fleet-level experiment: OCS vs static placement over one failure trace.

The fleet-scale composition of the paper's operational claims: slices
"picked from anywhere in the supercomputer" (Section 2.5) keep goodput
high under host failures (Figure 4), measured here end to end — a
Table 2 job stream with serving residencies, queueing, preemption, and
checkpoint-restart replayed under both placement policies on an
identical block-outage trace.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.fleet.presets import preset_config
from repro.fleet.simulator import compare_policies
from repro.units import HOUR


def run_fleet_experiment(preset: str = "tiny",
                         seed: int = 0) -> ExperimentResult:
    """Run one preset under both policies and compare telemetry.

    (Named to avoid colliding with :func:`repro.fleet.run_fleet`, the
    single-policy library entry point.)
    """
    config = preset_config(preset)
    reports = compare_policies(config, seed=seed)
    result = ExperimentResult(
        experiment_id="fleet",
        title="Fleet simulation: goodput under failures, OCS vs static",
        columns=["metric", "OCS", "static"],
    )
    ocs, static = reports["ocs"].summary, reports["static"].summary
    for key, scale, unit in [
        ("jobs_submitted", 1.0, ""), ("jobs_completed", 1.0, ""),
        ("goodput", 1.0, ""), ("utilization", 1.0, ""),
        ("mean_queue_wait", 1 / HOUR, "h"),
        ("p95_queue_wait", 1 / HOUR, "h"),
        ("block_failures", 1.0, ""), ("job_interruptions", 1.0, ""),
        ("job_preemptions", 1.0, ""), ("replay_fraction", 1.0, ""),
        ("restore_fraction", 1.0, ""),
    ]:
        result.rows.append([
            key + (f" ({unit})" if unit else ""),
            round(ocs[key] * scale, 4), round(static[key] * scale, 4)])

    result.paper["OCS goodput beats static under same failures"] = "yes"
    result.measured["OCS goodput beats static under same failures"] = \
        "yes" if ocs["goodput"] > static["goodput"] else "NO"
    result.paper["slices picked from anywhere (Sec 2.5)"] = \
        "higher goodput"
    result.measured["slices picked from anywhere (Sec 2.5)"] = (
        f"{(ocs['goodput'] / static['goodput'] - 1):+.1%} goodput"
        if static["goodput"] > 0 else "static did no useful work")
    result.measured["OCS goodput"] = round(ocs["goodput"], 3)
    result.measured["static goodput"] = round(static["goodput"], 3)
    result.notes.append(
        f"preset {preset!r}, seed {seed}: {config.num_pods} pods x "
        f"{config.blocks_per_pod} blocks, "
        f"{config.horizon_seconds / HOUR:.0f}h horizon, identical job "
        f"stream and outage trace for both policies")
    result.notes.append(
        "absolute goodput depends on offered load; the reproduced claim "
        "is the OCS-over-static gap of Figure 4, not its y-axis")
    return result

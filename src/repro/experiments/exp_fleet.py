"""Fleet-level experiment: OCS vs static placement over one failure trace.

The fleet-scale composition of the paper's operational claims: slices
"picked from anywhere in the supercomputer" (Section 2.5) keep goodput
high under host failures (Figure 4), measured here end to end — a
Table 2 job stream with serving residencies, queueing, preemption, and
checkpoint-restart replayed under both placement policies on an
identical block-outage trace.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.fleet.presets import preset_config
from repro.fleet.simulator import (compare_cross_pod, compare_policies,
                                   compare_strategies)
from repro.units import HOUR


def run_fleet_experiment(preset: str = "tiny",
                         seed: int = 0) -> ExperimentResult:
    """Run one preset under both policies and compare telemetry.

    (Named to avoid colliding with :func:`repro.fleet.run_fleet`, the
    single-policy library entry point.)
    """
    config = preset_config(preset)
    reports = compare_policies(config, seed=seed)
    result = ExperimentResult(
        experiment_id="fleet",
        title="Fleet simulation: goodput under failures, OCS vs static",
        columns=["metric", "OCS", "static"],
    )
    ocs, static = reports["ocs"].summary, reports["static"].summary
    for key, scale, unit in [
        ("jobs_submitted", 1.0, ""), ("jobs_completed", 1.0, ""),
        ("goodput", 1.0, ""), ("utilization", 1.0, ""),
        ("mean_queue_wait", 1 / HOUR, "h"),
        ("p95_queue_wait", 1 / HOUR, "h"),
        ("block_failures", 1.0, ""), ("job_interruptions", 1.0, ""),
        ("job_preemptions", 1.0, ""), ("replay_fraction", 1.0, ""),
        ("restore_fraction", 1.0, ""),
    ]:
        result.rows.append([
            key + (f" ({unit})" if unit else ""),
            round(ocs[key] * scale, 4), round(static[key] * scale, 4)])

    result.paper["OCS goodput beats static under same failures"] = "yes"
    result.measured["OCS goodput beats static under same failures"] = \
        "yes" if ocs["goodput"] > static["goodput"] else "NO"
    result.paper["slices picked from anywhere (Sec 2.5)"] = \
        "higher goodput"
    result.measured["slices picked from anywhere (Sec 2.5)"] = (
        f"{(ocs['goodput'] / static['goodput'] - 1):+.1%} goodput"
        if static["goodput"] > 0 else "static did no useful work")
    result.measured["OCS goodput"] = round(ocs["goodput"], 3)
    result.measured["static goodput"] = round(static["goodput"], 3)
    result.notes.append(
        f"preset {preset!r}, seed {seed}: {config.num_pods} pods x "
        f"{config.blocks_per_pod} blocks, "
        f"{config.horizon_seconds / HOUR:.0f}h horizon, identical job "
        f"stream and outage trace for both policies")
    result.notes.append(
        "absolute goodput depends on offered load; the reproduced claim "
        "is the OCS-over-static gap of Figure 4, not its y-axis")
    return result


def run_fleet_strategies(preset: str = "small",
                         seed: int = 0) -> ExperimentResult:
    """Placement-strategy family under the OCS policy, identical inputs.

    Section 2.5 makes placement flexible; Section 2.2's switching
    latency makes it non-free.  This experiment replays one job stream
    and outage trace under first_fit, best_fit, and defrag so the
    fragmentation-vs-rewiring tradeoff is measured, not asserted.
    """
    config = preset_config(preset)
    reports = compare_strategies(config, seed=seed)
    result = ExperimentResult(
        experiment_id="fleet_strategies",
        title="Fleet placement strategies under OCS reconfiguration "
              "latency",
        columns=["metric", "first_fit", "best_fit", "defrag"],
    )
    summaries = [reports[name].summary
                 for name in ("first_fit", "best_fit", "defrag")]
    for key, scale, unit in [
        ("jobs_completed", 1.0, ""), ("goodput", 1.0, ""),
        ("utilization", 1.0, ""),
        ("mean_queue_wait", 1 / HOUR, "h"),
        ("p95_queue_wait", 1 / HOUR, "h"),
        ("job_migrations", 1.0, ""),
        ("ocs_reconfigurations", 1.0, ""),
        ("reconfig_fraction", 1.0, ""),
        ("block_failures", 1.0, ""),
    ]:
        result.rows.append(
            [key + (f" ({unit})" if unit else "")] +
            [round(summary[key] * scale, 4) for summary in summaries])

    first_fit, best_fit, defrag = summaries
    result.paper["placement is flexible but not free (Secs 2.2, 2.5)"] = \
        "reconfiguration latency > 0"
    result.measured["placement is flexible but not free (Secs 2.2, 2.5)"] = (
        "yes" if all(s["reconfig_fraction"] > 0 for s in summaries)
        else "NO")
    result.paper["identical failure trace across strategies"] = "yes"
    result.measured["identical failure trace across strategies"] = (
        "yes" if len({s["block_failures"] for s in summaries}) == 1
        else "NO")
    result.measured["first_fit mean wait (h)"] = round(
        first_fit["mean_queue_wait"] / HOUR, 3)
    result.measured["best_fit mean wait (h)"] = round(
        best_fit["mean_queue_wait"] / HOUR, 3)
    result.measured["defrag mean wait (h)"] = round(
        defrag["mean_queue_wait"] / HOUR, 3)
    result.measured["defrag migrations"] = round(
        defrag["job_migrations"])
    result.notes.append(
        f"preset {preset!r}, seed {seed}: one OCS fleet, "
        f"{config.num_pods} pods x {config.blocks_per_pod} blocks, "
        f"reconfig {config.reconfig_base_seconds:.0f}s + "
        f"{config.ocs_switch_seconds * 1e3:.0f}ms/mirror-move, same job "
        f"stream and outage trace for every strategy")
    return result


def run_fleet_crosspod(preset: str = "large",
                       seed: int = 0) -> ExperimentResult:
    """Machine-wide placement A/B: cross-pod slices on vs off.

    The paper's machine is 64 racks stitched into arbitrary-size slices
    by a machine-level OCS layer (Sections 2-3): jobs bigger than one
    pod only exist because slices can span pods.  This experiment
    replays one `large`-preset job stream — whose Table 2 mix includes
    48-block slices against 27-block pods — with cross-pod placement
    enabled and disabled, on identical inputs.  Disabled, those jobs
    can never place; enabled, they ride the trunk layer and pay its
    reconfiguration latency and bandwidth tax.
    """
    config = preset_config(preset)
    reports = compare_cross_pod(config, seed=seed)
    result = ExperimentResult(
        experiment_id="fleet_crosspod",
        title="Machine-wide placement: cross-pod slices over the trunk "
              "OCS layer",
        columns=["metric", "cross_pod", "single_pod"],
    )
    enabled = reports["cross_pod"].summary
    disabled = reports["single_pod"].summary
    for key, scale, unit in [
        ("jobs_submitted", 1.0, ""), ("jobs_completed", 1.0, ""),
        ("jobs_never_ran", 1.0, ""),
        ("goodput", 1.0, ""), ("utilization", 1.0, ""),
        ("cross_pod_fraction", 1.0, ""),
        ("job_cross_pod_placements", 1.0, ""),
        ("trunk_utilization", 1.0, ""),
        ("trunk_stall_fraction", 1.0, ""),
        ("median_queue_wait", 1 / HOUR, "h"),
        ("mean_queue_wait", 1 / HOUR, "h"),
        ("spare_port_repairs", 1.0, ""),
        ("block_failures", 1.0, ""),
    ]:
        result.rows.append([
            key + (f" ({unit})" if unit else ""),
            round(enabled[key] * scale, 4),
            round(disabled[key] * scale, 4)])

    result.paper["slices span pods over the machine OCS layer "
                 "(Secs 2-3)"] = "jobs > one pod run"
    result.measured["slices span pods over the machine OCS layer "
                    "(Secs 2-3)"] = (
        "yes" if enabled["cross_pod_fraction"] > 0 else "NO")
    result.paper["cross-pod placement beats draining outsized jobs"] = \
        "higher goodput"
    result.measured["cross-pod placement beats draining outsized jobs"] = (
        f"{enabled['goodput'] - disabled['goodput']:+.3f} goodput")
    result.measured["cross-pod goodput"] = round(enabled["goodput"], 3)
    result.measured["single-pod goodput"] = round(disabled["goodput"], 3)
    result.measured["spare-port repairs"] = round(
        enabled["spare_port_repairs"])
    result.notes.append(
        f"preset {preset!r}, seed {seed}: {config.num_pods} pods x "
        f"{config.blocks_per_pod} blocks, {config.trunk_ports} trunk "
        f"ports/pod, trunk tax {config.trunk_bandwidth_tax:.0%} x "
        f"cross-link share, identical job stream and outage trace for "
        f"both runs")
    result.notes.append(
        "with cross-pod disabled the machine-wide jobs never place — "
        "the modern-fleet version of draining a job around hardware it "
        "cannot reach")
    return result

"""One experiment module per paper table/figure.

Every experiment returns an :class:`~repro.experiments.base.ExperimentResult`
carrying structured rows, the paper's published claims, and our measured
values; `render()` prints the paper-vs-measured comparison.  The registry
maps experiment ids ('table1', 'figure6', 'section73', ...) to runners;
`benchmarks/` times them and EXPERIMENTS.md records the outcomes.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, list_experiments, run

__all__ = ["ExperimentResult", "EXPERIMENTS", "list_experiments", "run"]

"""Experiments for the paper's data tables: 1, 2, 4, 5, 6."""

from __future__ import annotations

from repro.chips.specs import A100, ChipSpec, IPU_BOW, TPUV3, TPUV4
from repro.energy.mlperf_power import table6_rows
from repro.experiments.base import ExperimentResult
from repro.models.workload import (table1_rows, table2_rows,
                                   transformer_share_2022)
from repro.units import format_bytes, format_flops, format_rate


def run_table1() -> ExperimentResult:
    """Table 1: workloads by DNN model type across four fleet snapshots."""
    result = ExperimentResult(
        experiment_id="table1",
        title="Workloads by DNN model type (% TPUs used)",
        columns=["snapshot", "MLP/DLRM", "RNN", "CNN", "Transformer",
                 "(BERT)", "(LLM)"],
    )
    for snapshot, mix in table1_rows():
        result.rows.append([
            snapshot,
            f"{mix['MLP/DLRM']:.0%}", f"{mix['RNN']:.0%}",
            f"{mix['CNN']:.0%}", f"{mix['Transformer']:.0%}",
            f"{mix['BERT']:.0%}", f"{mix['LLM']:.0%}",
        ])
    result.paper["transformer share 10/2022"] = 0.57
    result.measured["transformer share 10/2022"] = transformer_share_2022()
    result.paper["RNN share 10/2022"] = 0.02
    result.measured["RNN share 10/2022"] = \
        dict(table1_rows())["TPU v4 (10/2022, training)"]["RNN"]
    return result


def run_table2() -> ExperimentResult:
    """Table 2: slice-shape popularity, categories re-derived."""
    result = ExperimentResult(
        experiment_id="table2",
        title="Popularity of TPU v4 slices (day in November 2022)",
        columns=["slice", "share", "category (re-derived)"],
    )
    top_share = 0.0
    top_label = ""
    for label, share, category in table2_rows():
        result.rows.append([label, f"{share:.1%}", category])
        if share > top_share:
            top_share, top_label = share, label
    result.paper["most popular slice"] = "4x4x8_T (16.0%)"
    result.measured["most popular slice"] = f"{top_label} ({top_share:.1%})"
    result.paper["listed share total"] = "~97.5% (>=0.1% slices)"
    result.measured["listed share total"] = \
        f"{sum(r[1] for r in table2_rows()):.1%}"
    return result


def _spec_rows(spec: ChipSpec) -> list:
    return [
        spec.name,
        spec.deployed,
        format_flops(spec.peak_bf16_flops),
        f"{spec.clock_hz / 1e6:.0f} MHz",
        f"{spec.process_nm} nm",
        f"{spec.transistors / 1e9:.0f}B",
        spec.chips_per_host,
        f"{spec.ici_links}x{format_rate(spec.ici_link_bandwidth)}",
        spec.largest_config_chips,
        spec.processors_per_chip,
        spec.total_threads,
        format_bytes(spec.on_chip_memory_bytes),
        format_bytes(spec.register_file_bytes),
        (f"{format_bytes(spec.hbm_capacity_bytes)}, "
         f"{format_rate(spec.hbm_bandwidth)}") if spec.hbm_bandwidth else "none",
    ]


_SPEC_COLUMNS = ["chip", "deployed", "peak", "clock", "node", "transistors",
                 "chips/host", "ICI", "max chips", "processors", "threads",
                 "on-chip mem", "regfile", "HBM"]


def run_table4() -> ExperimentResult:
    """Table 4: TPU v4 vs TPU v3 features."""
    result = ExperimentResult(
        experiment_id="table4",
        title="TPU v4 and TPU v3 features",
        columns=_SPEC_COLUMNS,
        rows=[_spec_rows(TPUV4), _spec_rows(TPUV3)],
    )
    result.paper["peak ratio v4/v3"] = 2.2
    result.measured["peak ratio v4/v3"] = round(
        TPUV4.peak_bf16_flops / TPUV3.peak_bf16_flops, 2)
    result.paper["HBM BW ratio v4/v3"] = 1.33
    result.measured["HBM BW ratio v4/v3"] = round(
        TPUV4.hbm_bandwidth / TPUV3.hbm_bandwidth, 2)
    result.paper["mean power v4 (W)"] = 170
    result.measured["mean power v4 (W)"] = TPUV4.mean_watts
    return result


def run_table5() -> ExperimentResult:
    """Table 5: A100 and IPU Bow features."""
    result = ExperimentResult(
        experiment_id="table5",
        title="A100 and Graphcore MK2 IPU Bow features",
        columns=_SPEC_COLUMNS,
        rows=[_spec_rows(A100), _spec_rows(IPU_BOW)],
    )
    result.paper["A100 threads"] = 3456
    result.measured["A100 threads"] = A100.total_threads
    result.paper["IPU threads"] = 8832
    result.measured["IPU threads"] = IPU_BOW.total_threads
    result.paper["A100 peak / TPUv4 peak"] = 1.13
    result.measured["A100 peak / TPUv4 peak"] = round(
        A100.peak_bf16_flops / TPUV4.peak_bf16_flops, 2)
    return result


def run_table6() -> ExperimentResult:
    """Table 6: mean MLPerf power, measured vs our utilization model."""
    result = ExperimentResult(
        experiment_id="table6",
        title="Mean power for DSA+HBM, 64-chip MLPerf systems",
        columns=["benchmark", "A100 measured (W)", "TPUv4 measured (W)",
                 "A100 modeled (W)", "TPUv4 modeled (W)", "ratio"],
    )
    for (benchmark, a100_measured, tpu_measured, a100_model, tpu_model,
         ratio) in table6_rows():
        result.rows.append([benchmark, a100_measured, tpu_measured,
                            round(a100_model, 1), round(tpu_model, 1),
                            round(ratio, 2)])
        result.paper[f"{benchmark} power ratio"] = round(ratio, 2)
        result.measured[f"{benchmark} power ratio"] = round(
            a100_model / tpu_model, 2)
    result.notes.append(
        "measured columns are the paper's published watts; modeled columns "
        "come from the idle+utilization envelope in repro.energy")
    return result

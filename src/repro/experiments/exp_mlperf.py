"""Experiments for the MLPerf and carbon sections: Figs 14, 15; Sec 7.6."""

from __future__ import annotations

from repro.energy.carbon import co2e_comparison
from repro.experiments.base import ExperimentResult
from repro.mlperf.comparison import (equal_size_ratio,
                                     fastest_relative_to_a100,
                                     scaling_series)
from repro.mlperf.results import entries_for, systems_in


def run_figure14() -> ExperimentResult:
    """Figure 14: fastest MLPerf 2.0 performance per DSA, relative to A100."""
    result = ExperimentResult(
        experiment_id="figure14",
        title="Fastest MLPerf Training performance relative to A100",
        columns=["benchmark", "system", "chips", "relative performance"],
    )
    for benchmark in ("BERT", "ResNet", "RetinaNet", "MaskRCNN", "DLRM"):
        bars = fastest_relative_to_a100(benchmark)
        for system, value in sorted(bars.items()):
            chips = entries_for(benchmark, system)[-1].chips
            result.rows.append([benchmark, system, chips, round(value, 2)])
    result.paper["Graphcore benchmarks submitted"] = 2
    result.measured["Graphcore benchmarks submitted"] = sum(
        1 for b in ("BERT", "ResNet", "RetinaNet", "MaskRCNN", "DLRM")
        if "IPU Bow" in systems_in(b))
    result.paper["TPU v4 DLRM category"] = "research"
    result.measured["TPU v4 DLRM category"] = \
        entries_for("DLRM", "TPU v4")[-1].round
    result.notes.append(
        "vendors pick their own system sizes in Figure 14; Figure 15 makes "
        "the equal-size comparison")
    return result


def run_figure15() -> ExperimentResult:
    """Figure 15: BERT/ResNet scaling curves and equal-size ratios."""
    result = ExperimentResult(
        experiment_id="figure15",
        title="MLPerf BERT and ResNet scaling (log-log)",
        columns=["benchmark", "system", "chips", "minutes"],
    )
    for benchmark in ("BERT", "ResNet"):
        for system in systems_in(benchmark):
            series = scaling_series(benchmark, system)
            for chips, minutes in zip(series.chips, series.minutes):
                result.rows.append([benchmark, system, chips, minutes])
    result.paper["BERT: TPUv4/A100 at ~4K chips"] = 1.15
    result.measured["BERT: TPUv4/A100 at ~4K chips"] = round(
        equal_size_ratio("BERT", "TPU v4", "A100", 4096, chips_b=4216), 2)
    result.paper["ResNet: TPUv4/A100 at ~4K chips"] = 1.67
    result.measured["ResNet: TPUv4/A100 at ~4K chips"] = round(
        equal_size_ratio("ResNet", "TPU v4", "A100", 4096, chips_b=4216), 2)
    result.paper["BERT: TPUv4/IPU at 256 chips"] = 4.3
    result.measured["BERT: TPUv4/IPU at 256 chips"] = round(
        equal_size_ratio("BERT", "TPU v4", "IPU Bow", 256), 2)
    result.paper["ResNet: TPUv4/IPU at 256 chips"] = 4.5
    result.measured["ResNet: TPUv4/IPU at 256 chips"] = round(
        equal_size_ratio("ResNet", "TPU v4", "IPU Bow", 256), 2)

    from repro.reporting.figures import AsciiChart, Series
    chart = AsciiChart("Figure 15 BERT (log-log): train minutes vs chips",
                       x_label="chips", y_label="minutes",
                       log_x=True, log_y=True)
    for system in systems_in("BERT"):
        series = scaling_series("BERT", system)
        chart.add(Series(system, series.chips, series.minutes))
    result.charts.append(chart)
    return result


def run_section76() -> ExperimentResult:
    """Section 7.6: energy and CO2e vs a contemporary DSA on-premise."""
    comparison = co2e_comparison()
    factors = comparison.factors
    result = ExperimentResult(
        experiment_id="section76",
        title="Operational energy and CO2e: on-prem DSA vs TPU v4 in WSC",
        columns=["factor", "value"],
        rows=[
            ["Model (same workload)", factors.model],
            ["Machine (perf/Watt, conservative)", factors.machine],
            ["Mechanization (PUE ratio 1.57/1.10)",
             round(factors.mechanization, 3)],
            ["Map (0.475 / 0.074 kgCO2e/kWh)", round(factors.map, 2)],
        ],
    )
    result.paper["energy ratio"] = 2.85
    result.measured["energy ratio"] = round(comparison.energy_ratio, 2)
    result.paper["CO2e ratio"] = 18.3
    result.measured["CO2e ratio"] = round(comparison.co2e_ratio, 1)
    result.paper["headline"] = "~20x less CO2e"
    result.measured["headline"] = (
        f"~{comparison.co2e_ratio:.0f}x less CO2e")
    return result

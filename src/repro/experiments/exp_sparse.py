"""Experiments for the SparseCore results: Figures 8, 9, 10, 17."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.models.dlrm import (DLRM0_2022, SystemKind,
                               dlrm_relative_performance,
                               dlrm0_version_history)
from repro.parallelism.panas import (dlrm0_panas_search,
                                     original_dlrm0_balance, panas_gain)
from repro.sparsecore.executor import EmbeddingWorkload, embedding_step_time
from repro.topology.properties import theoretical_bisection_scaling

FIGURE8_SIZES = (64, 128, 256, 512, 1024, 2048, 4096)


def run_figure8(global_batch: int = 4096) -> ExperimentResult:
    """Figure 8: bisection ratio and embedding sensitivity to it."""
    result = ExperimentResult(
        experiment_id="figure8",
        title="Bisection bandwidth ratio and embedding speedup from it",
        columns=["chips", "3D/2D bisection link ratio",
                 "embedding speedup from 3D bisection", "v4 bottleneck"],
    )
    speedups = {}
    for chips in FIGURE8_SIZES:
        ratio = (theoretical_bisection_scaling(chips, 3)
                 / theoretical_bisection_scaling(chips, 2))
        workload = EmbeddingWorkload(global_batch=global_batch)
        torus_3d = embedding_step_time(workload, chips, torus_dims=3)
        torus_2d = embedding_step_time(workload, chips, torus_dims=2)
        speedups[chips] = torus_2d.seconds / torus_3d.seconds
        result.rows.append([chips, round(ratio, 2),
                            round(speedups[chips], 2), torus_3d.bottleneck])
    result.paper["bisection ratio range"] = "2x-4x"
    ratios = [theoretical_bisection_scaling(c, 3)
              / theoretical_bisection_scaling(c, 2) for c in FIGURE8_SIZES]
    result.measured["bisection ratio range"] = (
        f"{min(ratios):.1f}x-{max(ratios):.1f}x")
    result.paper["embedding speedup range"] = "1.1x-2.0x"
    result.measured["embedding speedup range"] = (
        f"{min(speedups.values()):.2f}x-{max(speedups.values()):.2f}x")
    result.paper["overheads dominate at"] = "1024 chips"
    workload = EmbeddingWorkload(global_batch=global_batch)
    step_1k = embedding_step_time(workload, 1024)
    dominated = step_1k.overhead_seconds > max(step_1k.gather_seconds,
                                               step_1k.network_seconds)
    result.measured["overheads dominate at"] = (
        "1024 chips" if dominated else "not reproduced")
    return result


def run_figure9() -> ExperimentResult:
    """Figure 9: DLRM0 across CPU / TPU v3 / TPU v4 / no-SparseCore."""
    relative = dlrm_relative_performance()
    labels = {
        SystemKind.CPU_CLUSTER: "CPU (576 Skylake sockets)",
        SystemKind.TPUV3: "TPU v3 (128)",
        SystemKind.TPUV4: "TPU v4 (128)",
        SystemKind.TPUV4_EMB_ON_HOST: "TPU v4, emb on CPU hosts",
        SystemKind.TPUV4_EMB_ON_VARIABLE_SERVER:
            "TPU v4, emb on variable servers",
    }
    result = ExperimentResult(
        experiment_id="figure9",
        title="DLRM0 performance across systems (relative to CPU)",
        columns=["system", "relative performance"],
        rows=[[labels[system], round(value, 1)]
              for system, value in sorted(relative.items(),
                                          key=lambda kv: kv[1])],
    )
    result.paper["TPU v3 vs CPU"] = 9.8
    result.measured["TPU v3 vs CPU"] = round(relative[SystemKind.TPUV3], 1)
    result.paper["TPU v4 vs CPU"] = 30.1
    result.measured["TPU v4 vs CPU"] = round(relative[SystemKind.TPUV4], 1)
    result.paper["TPU v4 vs TPU v3"] = 3.1
    result.measured["TPU v4 vs TPU v3"] = round(
        relative[SystemKind.TPUV4] / relative[SystemKind.TPUV3], 2)
    drop_host = (relative[SystemKind.TPUV4]
                 / relative[SystemKind.TPUV4_EMB_ON_HOST])
    drop_vs = (relative[SystemKind.TPUV4]
               / relative[SystemKind.TPUV4_EMB_ON_VARIABLE_SERVER])
    result.paper["drop without SparseCore"] = "5x-7x"
    result.measured["drop without SparseCore"] = (
        f"{min(drop_host, drop_vs):.1f}x-{max(drop_host, drop_vs):.1f}x")
    return result


def run_figure10() -> ExperimentResult:
    """Figure 10: PA-NAS balancing SC and TC time for DLRM0."""
    original = original_dlrm0_balance()
    optimized = dlrm0_panas_search()
    result = ExperimentResult(
        experiment_id="figure10",
        title="PA-NAS rebalancing of DLRM0 (normalized times)",
        columns=["variant", "dense (TC) time", "sparse (SC) time",
                 "step time", "SC idle"],
        rows=[
            ["original DLRM0", round(original.dense_time, 3),
             round(original.sparse_time, 3), round(original.step_time, 3),
             f"{original.sc_idle_fraction:.0%}"],
            ["PA-NAS optimized", round(optimized.dense_time, 3),
             round(optimized.sparse_time, 3), round(optimized.step_time, 3),
             f"{optimized.sc_idle_fraction:.0%}"],
        ],
    )
    result.paper["original SC idle"] = "~25%"
    result.measured["original SC idle"] = f"{original.sc_idle_fraction:.0%}"
    result.paper["end-to-end gain"] = ">10%"
    result.measured["end-to-end gain"] = f"{(panas_gain() - 1):.1%}"
    result.paper["optimized pipes balanced"] = "yes"
    balanced = abs(optimized.dense_time - optimized.sparse_time) \
        / optimized.step_time < 0.05
    result.measured["optimized pipes balanced"] = "yes" if balanced else "no"
    return result


def run_figure17() -> ExperimentResult:
    """Figure 17: DLRM0 growth in weights and embeddings, 2017-2022."""
    history = dlrm0_version_history()
    result = ExperimentResult(
        experiment_id="figure17",
        title="Change in size of DLRM0 over time",
        columns=["version", "weights (M, Int8)", "embeddings (B, fp32)"],
    )
    for config in history[::6] + [history[-1]]:
        result.rows.append([config.name,
                            round(config.dense_params / 1e6, 1),
                            round(config.embedding_params / 1e9, 2)])
    result.paper["versions"] = 43
    result.measured["versions"] = len(history)
    result.paper["weights growth"] = 4.2
    result.measured["weights growth"] = round(
        history[-1].dense_params / history[0].dense_params, 2)
    result.paper["embeddings growth"] = 3.8
    result.measured["embeddings growth"] = round(
        history[-1].embedding_params / history[0].embedding_params, 2)
    result.paper["final size"] = "137M weights, 20B embeddings"
    result.measured["final size"] = (
        f"{DLRM0_2022.dense_params / 1e6:.0f}M weights, "
        f"{DLRM0_2022.embedding_params / 1e9:.0f}B embeddings")
    return result
